package testsuite

import (
	"strings"
	"time"

	"gompi/mpi"
)

// The environmental-inquiry programs (3).

func init() {
	register(Program{Name: "wtime", Category: CatEnv, NP: 2, Run: progWtime})
	register(Program{Name: "procname", Category: CatEnv, NP: 2, Run: progProcName})
	register(Program{Name: "errhandler", Category: CatEnv, NP: 2, Run: progErrhandler})
}

func progWtime(env *mpi.Env) error {
	t0 := env.Wtime()
	time.Sleep(2 * time.Millisecond)
	t1 := env.Wtime()
	if t1 <= t0 {
		return failf("Wtime not monotonic: %v then %v", t0, t1)
	}
	if d := t1 - t0; d < 0.001 || d > 1.0 {
		return failf("Wtime drift: slept 2ms, measured %v s", d)
	}
	if tick := env.Wtick(); tick <= 0 || tick > 0.001 {
		return failf("Wtick out of range: %v", tick)
	}
	return nil
}

func progProcName(env *mpi.Env) error {
	name := env.GetProcessorName()
	if name == "" {
		return failf("empty processor name")
	}
	if !env.Initialized() {
		return failf("Initialized() false before Finalize")
	}
	// Exchange names: each rank's name must be non-empty on the peer.
	// Both sides send before receiving, so the send must be
	// non-blocking — a blocking send here would be unsafe MPI,
	// deadlocking whenever the transport cannot buffer eagerly.
	w := env.CommWorld()
	out := []byte(name)
	peer := 1 - w.Rank()
	sreq, err := w.Isend(out, 0, len(out), mpi.BYTE, peer, 1)
	if err != nil {
		return err
	}
	st, err := w.Probe(peer, 1)
	if err != nil {
		return err
	}
	in := make([]byte, st.Bytes())
	if _, err := w.Recv(in, 0, len(in), mpi.BYTE, peer, 1); err != nil {
		return err
	}
	if _, err := sreq.Wait(); err != nil {
		return err
	}
	if len(strings.TrimSpace(string(in))) == 0 {
		return failf("peer sent empty processor name")
	}
	return nil
}

func progErrhandler(env *mpi.Env) error {
	w := env.CommWorld()
	if w.Errhandler() != mpi.ErrorsReturn {
		return failf("default errhandler must be ErrorsReturn")
	}
	// ErrorsReturn: an invalid rank comes back as an error value.
	buf := []int32{0}
	err := w.Send(buf, 0, 1, mpi.INT, w.Size()+5, 1)
	if mpi.ClassOf(err) != mpi.ErrRank {
		return failf("invalid rank: got %v, want ErrRank", err)
	}
	// Negative tag.
	err = w.Send(buf, 0, 1, mpi.INT, 0, -7)
	if mpi.ClassOf(err) != mpi.ErrTag {
		return failf("invalid tag: got %v, want ErrTag", err)
	}
	// ErrorsAreFatal: the same mistake panics.
	dup, err := w.Dup()
	if err != nil {
		return err
	}
	dup.SetErrhandler(mpi.ErrorsAreFatal)
	panicked := func() (p bool) {
		defer func() { p = recover() != nil }()
		dup.Send(buf, 0, 1, mpi.INT, w.Size()+5, 1) //nolint:errcheck // panics
		return false
	}()
	if !panicked {
		return failf("ErrorsAreFatal did not panic")
	}
	dup.SetErrhandler(mpi.ErrorsReturn)
	return dup.Free()
}
