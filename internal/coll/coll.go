package coll

import (
	"encoding/binary"
	"fmt"

	"gompi/internal/core"
	"gompi/internal/dtype"
)

// Comm is the collective layer's view of a communicator: the rank's
// progress engine, the communicator's reserved collective context, the
// caller's group rank and size, and the group-rank→world-rank map.
// Collectives on one communicator must be called by all members in the
// same order (the MPI rule); the layer relies on per-pair FIFO matching
// for correctness across back-to-back collectives.
type Comm struct {
	P     *core.Proc
	Ctx   int32
	Rank  int
	Size  int
	World func(groupRank int) int
}

// Internal tags, one per collective family. Distinct tags keep different
// collectives' traffic from cross-matching when consecutive calls
// overlap in flight.
const (
	tagBarrier = iota + 1
	tagBcast
	tagGather
	tagScatter
	tagAllgather
	tagAlltoall
	tagReduce
	tagScan
	tagCtxAlloc
)

func (c *Comm) send(dst, tag int, b []byte) error {
	req, err := c.isend(dst, tag, b)
	if err != nil {
		return err
	}
	req.Wait()
	return nil
}

// isend never passes recycle: collective algorithms fan one buffer out
// to several destinations and forward received payloads, so no slice
// here carries an exclusive-ownership promise.
func (c *Comm) isend(dst, tag int, b []byte) (*core.Request, error) {
	return c.P.Isend(c.Ctx, c.Rank, c.World(dst), tag, b, core.ModeStandard, false)
}

func (c *Comm) recv(src, tag int) ([]byte, error) {
	req := c.P.Irecv(c.Ctx, int32(src), int32(tag))
	st := req.Wait()
	if st.Cancelled {
		return nil, fmt.Errorf("coll: receive cancelled")
	}
	// Payload lifetime is unbounded here (algorithms forward and stash
	// blocks), so take it out of the request before recycling.
	b := req.TakePayload()
	req.Recycle()
	return b, nil
}

// sendrecv runs a concurrent exchange with two (possibly distinct)
// partners, the building block of the symmetric algorithms.
func (c *Comm) sendrecv(dst, src, tag int, out []byte) ([]byte, error) {
	sreq, err := c.isend(dst, tag, out)
	if err != nil {
		return nil, err
	}
	in, err := c.recv(src, tag)
	if err != nil {
		return nil, err
	}
	sreq.Wait()
	return in, nil
}

// rel maps a group rank to its rank relative to root; unrel inverts it.
func rel(rank, root, size int) int { return (rank - root + size) % size }

func unrel(vr, root, size int) int { return (vr + root) % size }

func (c *Comm) check(root int) error {
	if root < 0 || root >= c.Size {
		return fmt.Errorf("coll: root rank %d out of range [0,%d)", root, c.Size)
	}
	return nil
}

// Barrier blocks until every member has entered it (dissemination
// algorithm: ⌈log2 p⌉ rounds of shifted exchanges).
func (c *Comm) Barrier() error {
	for k := 1; k < c.Size; k <<= 1 {
		dst := (c.Rank + k) % c.Size
		src := (c.Rank - k + c.Size) % c.Size
		if _, err := c.sendrecv(dst, src, tagBarrier, nil); err != nil {
			return err
		}
	}
	return nil
}

// Bcast distributes root's payload to every member along a binomial tree
// and returns it (the root gets its own slice back).
func (c *Comm) Bcast(root int, data []byte) ([]byte, error) {
	if err := c.check(root); err != nil {
		return nil, err
	}
	vr := rel(c.Rank, root, c.Size)
	mask := 1
	for mask < c.Size {
		if vr&mask != 0 {
			got, err := c.recv(unrel(vr-mask, root, c.Size), tagBcast)
			if err != nil {
				return nil, err
			}
			data = got
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if vr+mask < c.Size {
			if err := c.send(unrel(vr+mask, root, c.Size), tagBcast, data); err != nil {
				return nil, err
			}
		}
		mask >>= 1
	}
	return data, nil
}

// bundle encoding: u32 count, then per block u32 vrank, u32 len, bytes.
func encodeBundle(blocks map[int][]byte) []byte {
	n := 4
	for _, b := range blocks {
		n += 8 + len(b)
	}
	out := make([]byte, 0, n)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(blocks)))
	for vr, b := range blocks {
		out = binary.LittleEndian.AppendUint32(out, uint32(vr))
		out = binary.LittleEndian.AppendUint32(out, uint32(len(b)))
		out = append(out, b...)
	}
	return out
}

func decodeBundle(data []byte, into map[int][]byte) error {
	if len(data) < 4 {
		return fmt.Errorf("coll: short bundle")
	}
	n := int(binary.LittleEndian.Uint32(data))
	data = data[4:]
	for i := 0; i < n; i++ {
		if len(data) < 8 {
			return fmt.Errorf("coll: truncated bundle header")
		}
		vr := int(binary.LittleEndian.Uint32(data))
		ln := int(binary.LittleEndian.Uint32(data[4:]))
		data = data[8:]
		if len(data) < ln {
			return fmt.Errorf("coll: truncated bundle block")
		}
		into[vr] = data[:ln:ln]
		data = data[ln:]
	}
	return nil
}

// Gather collects every member's block at root along a binomial tree.
// At root the result is indexed by group rank; other ranks get nil.
func (c *Comm) Gather(root int, mine []byte) ([][]byte, error) {
	if err := c.check(root); err != nil {
		return nil, err
	}
	vr := rel(c.Rank, root, c.Size)
	have := map[int][]byte{vr: mine}
	mask := 1
	for mask < c.Size {
		if vr&mask != 0 {
			if err := c.send(unrel(vr-mask, root, c.Size), tagGather, encodeBundle(have)); err != nil {
				return nil, err
			}
			return nil, nil
		}
		if vr+mask < c.Size {
			got, err := c.recv(unrel(vr+mask, root, c.Size), tagGather)
			if err != nil {
				return nil, err
			}
			if err := decodeBundle(got, have); err != nil {
				return nil, err
			}
		}
		mask <<= 1
	}
	out := make([][]byte, c.Size)
	for v, b := range have {
		out[unrel(v, root, c.Size)] = b
	}
	return out, nil
}

// Scatter distributes parts (indexed by group rank, significant at root
// only) along a binomial tree; every member returns its own block.
// Blocks may have different sizes, so Scatter doubles as Scatterv.
func (c *Comm) Scatter(root int, parts [][]byte) ([]byte, error) {
	if err := c.check(root); err != nil {
		return nil, err
	}
	vr := rel(c.Rank, root, c.Size)
	have := make(map[int][]byte)
	mask := 1
	if vr == 0 {
		if len(parts) != c.Size {
			return nil, fmt.Errorf("coll: scatter with %d parts for %d ranks", len(parts), c.Size)
		}
		for r, b := range parts {
			have[rel(r, root, c.Size)] = b
		}
		for mask < c.Size {
			mask <<= 1
		}
		mask >>= 1
	} else {
		for mask < c.Size {
			if vr&mask != 0 {
				got, err := c.recv(unrel(vr-mask, root, c.Size), tagScatter)
				if err != nil {
					return nil, err
				}
				if err := decodeBundle(got, have); err != nil {
					return nil, err
				}
				break
			}
			mask <<= 1
		}
		mask >>= 1
	}
	for mask > 0 {
		if vr+mask < c.Size {
			sub := make(map[int][]byte)
			hi := vr + 2*mask
			if hi > c.Size {
				hi = c.Size
			}
			for v := vr + mask; v < hi; v++ {
				if b, ok := have[v]; ok {
					sub[v] = b
					delete(have, v)
				}
			}
			if err := c.send(unrel(vr+mask, root, c.Size), tagScatter, encodeBundle(sub)); err != nil {
				return nil, err
			}
		}
		mask >>= 1
	}
	return have[vr], nil
}

// Allgather collects every member's block at every member (ring
// algorithm, p-1 shifted steps). Blocks may differ in size, so this also
// serves Allgatherv.
func (c *Comm) Allgather(mine []byte) ([][]byte, error) {
	blocks := make([][]byte, c.Size)
	blocks[c.Rank] = mine
	right := (c.Rank + 1) % c.Size
	left := (c.Rank - 1 + c.Size) % c.Size
	cur := mine
	for step := 0; step < c.Size-1; step++ {
		in, err := c.sendrecv(right, left, tagAllgather, cur)
		if err != nil {
			return nil, err
		}
		origin := (c.Rank - step - 1 + c.Size) % c.Size
		blocks[origin] = in
		cur = in
	}
	return blocks, nil
}

// Alltoall delivers parts[j] to member j and returns the blocks received
// from every member (pairwise-exchange algorithm). Variable block sizes
// make it also serve Alltoallv.
func (c *Comm) Alltoall(parts [][]byte) ([][]byte, error) {
	if len(parts) != c.Size {
		return nil, fmt.Errorf("coll: alltoall with %d parts for %d ranks", len(parts), c.Size)
	}
	out := make([][]byte, c.Size)
	out[c.Rank] = parts[c.Rank]
	for step := 1; step < c.Size; step++ {
		dst := (c.Rank + step) % c.Size
		src := (c.Rank - step + c.Size) % c.Size
		in, err := c.sendrecv(dst, src, tagAlltoall, parts[dst])
		if err != nil {
			return nil, err
		}
		out[src] = in
	}
	return out, nil
}

// Reduce folds every member's dense slice with op, leaving the result at
// root (returned there; nil elsewhere). Commutative ops use a binomial
// tree; non-commutative ops gather and fold in rank order.
func (c *Comm) Reduce(root int, mine any, op *Op) (any, error) {
	if err := c.check(root); err != nil {
		return nil, err
	}
	if !op.Commutative {
		return c.reduceOrdered(root, mine, op)
	}
	vr := rel(c.Rank, root, c.Size)
	acc := dtype.CloneDense(mine)
	mask := 1
	for mask < c.Size {
		if vr&mask != 0 {
			wire, err := dtype.EncodeDense(acc)
			if err != nil {
				return nil, err
			}
			if err := c.send(unrel(vr-mask, root, c.Size), tagReduce, wire); err != nil {
				return nil, err
			}
			return nil, nil
		}
		if vr+mask < c.Size {
			got, err := c.recv(unrel(vr+mask, root, c.Size), tagReduce)
			if err != nil {
				return nil, err
			}
			cls, _ := dtype.ClassOf(acc)
			partial, err := dtype.DecodeDense(got, cls)
			if err != nil {
				return nil, err
			}
			// acc holds lower-rank contributions: fold acc into
			// partial, then adopt partial as the accumulator.
			if err := op.Apply(acc, partial); err != nil {
				return nil, err
			}
			acc = partial
		}
		mask <<= 1
	}
	return acc, nil
}

// reduceOrdered gathers all contributions at root and folds them in
// strict rank order, as required for non-commutative operations.
func (c *Comm) reduceOrdered(root int, mine any, op *Op) (any, error) {
	wire, err := dtype.EncodeDense(mine)
	if err != nil {
		return nil, err
	}
	blocks, err := c.Gather(root, wire)
	if err != nil {
		return nil, err
	}
	if c.Rank != root {
		return nil, nil
	}
	cls, _ := dtype.ClassOf(mine)
	acc, err := dtype.DecodeDense(blocks[0], cls)
	if err != nil {
		return nil, err
	}
	for r := 1; r < c.Size; r++ {
		next, err := dtype.DecodeDense(blocks[r], cls)
		if err != nil {
			return nil, err
		}
		if err := op.Apply(acc, next); err != nil {
			return nil, err
		}
		acc = next
	}
	return acc, nil
}

// Allreduce folds every member's dense slice with op and returns the
// result at every member. Commutative ops use recursive doubling with
// the standard non-power-of-two pre/post folding; non-commutative ops
// reduce to rank 0 and broadcast.
func (c *Comm) Allreduce(mine any, op *Op) (any, error) {
	if !op.Commutative {
		res, err := c.Reduce(0, mine, op)
		if err != nil {
			return nil, err
		}
		var wire []byte
		if c.Rank == 0 {
			if wire, err = dtype.EncodeDense(res); err != nil {
				return nil, err
			}
		}
		wire, err = c.Bcast(0, wire)
		if err != nil {
			return nil, err
		}
		cls, _ := dtype.ClassOf(mine)
		return dtype.DecodeDense(wire, cls)
	}

	cls, _ := dtype.ClassOf(mine)
	acc := dtype.CloneDense(mine)
	p2 := 1
	for p2*2 <= c.Size {
		p2 *= 2
	}
	remainder := c.Size - p2

	newRank := -1
	switch {
	case c.Rank < 2*remainder && c.Rank%2 == 0:
		// Fold into the odd neighbour, then idle.
		wire, err := dtype.EncodeDense(acc)
		if err != nil {
			return nil, err
		}
		if err := c.send(c.Rank+1, tagReduce, wire); err != nil {
			return nil, err
		}
	case c.Rank < 2*remainder:
		got, err := c.recv(c.Rank-1, tagReduce)
		if err != nil {
			return nil, err
		}
		lower, err := dtype.DecodeDense(got, cls)
		if err != nil {
			return nil, err
		}
		if err := op.Apply(lower, acc); err != nil {
			return nil, err
		}
		newRank = c.Rank / 2
	default:
		newRank = c.Rank - remainder
	}

	realOf := func(nr int) int {
		if nr < remainder {
			return nr*2 + 1
		}
		return nr + remainder
	}

	if newRank >= 0 {
		for mask := 1; mask < p2; mask <<= 1 {
			partner := newRank ^ mask
			wire, err := dtype.EncodeDense(acc)
			if err != nil {
				return nil, err
			}
			got, err := c.sendrecv(realOf(partner), realOf(partner), tagReduce, wire)
			if err != nil {
				return nil, err
			}
			theirs, err := dtype.DecodeDense(got, cls)
			if err != nil {
				return nil, err
			}
			if partner < newRank {
				if err := op.Apply(theirs, acc); err != nil {
					return nil, err
				}
			} else {
				if err := op.Apply(acc, theirs); err != nil {
					return nil, err
				}
				acc = theirs
			}
		}
	}

	// Post-fold: odd members of the front block return results to the
	// idled even members.
	if c.Rank < 2*remainder {
		if c.Rank%2 == 0 {
			got, err := c.recv(c.Rank+1, tagReduce)
			if err != nil {
				return nil, err
			}
			return dtype.DecodeDense(got, cls)
		}
		wire, err := dtype.EncodeDense(acc)
		if err != nil {
			return nil, err
		}
		if err := c.send(c.Rank-1, tagReduce, wire); err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// Scan computes the inclusive prefix reduction in rank order along a
// chain, which preserves non-commutative operation order by
// construction.
func (c *Comm) Scan(mine any, op *Op) (any, error) {
	acc := dtype.CloneDense(mine)
	if c.Rank > 0 {
		got, err := c.recv(c.Rank-1, tagScan)
		if err != nil {
			return nil, err
		}
		cls, _ := dtype.ClassOf(mine)
		prefix, err := dtype.DecodeDense(got, cls)
		if err != nil {
			return nil, err
		}
		if err := op.Apply(prefix, acc); err != nil {
			return nil, err
		}
	}
	if c.Rank < c.Size-1 {
		wire, err := dtype.EncodeDense(acc)
		if err != nil {
			return nil, err
		}
		if err := c.send(c.Rank+1, tagScan, wire); err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// ReduceScatter folds with op, then scatters consecutive segments of the
// result: member r receives counts[r] elements. Implemented as an
// ordered reduce to rank 0 followed by a scatter of the segments.
func (c *Comm) ReduceScatter(mine any, counts []int, op *Op) (any, error) {
	if len(counts) != c.Size {
		return nil, fmt.Errorf("coll: reduce_scatter with %d counts for %d ranks", len(counts), c.Size)
	}
	res, err := c.Reduce(0, mine, op)
	if err != nil {
		return nil, err
	}
	var parts [][]byte
	if c.Rank == 0 {
		parts = make([][]byte, c.Size)
		lo := 0
		for r, n := range counts {
			seg := dtype.SliceDense(res, lo, lo+n)
			if parts[r], err = dtype.EncodeDense(seg); err != nil {
				return nil, err
			}
			lo += n
		}
	}
	wire, err := c.Scatter(0, parts)
	if err != nil {
		return nil, err
	}
	cls, _ := dtype.ClassOf(mine)
	return dtype.DecodeDense(wire, cls)
}

// AgreeContextBase agrees on a context-id base for a new communicator:
// the max of all members' local candidates, via Allreduce over this
// (parent) communicator's collective context.
func (c *Comm) AgreeContextBase() (int32, error) {
	cand := []int32{c.P.AllocContexts()}
	res, err := c.Allreduce(cand, Max)
	if err != nil {
		return 0, err
	}
	base := res.([]int32)[0]
	c.P.CommitContexts(base)
	return base, nil
}

// Exscan computes the exclusive prefix reduction in rank order (the
// MPI-2 extension the paper's §5.3 targets): member r receives the fold
// of members 0..r-1. Rank 0's result is undefined and returned nil.
func (c *Comm) Exscan(mine any, op *Op) (any, error) {
	var prefix any
	if c.Rank > 0 {
		got, err := c.recv(c.Rank-1, tagScan)
		if err != nil {
			return nil, err
		}
		cls, _ := dtype.ClassOf(mine)
		if prefix, err = dtype.DecodeDense(got, cls); err != nil {
			return nil, err
		}
	}
	if c.Rank < c.Size-1 {
		// Forward the inclusive prefix including my contribution.
		var combined any
		if c.Rank == 0 {
			combined = mine
		} else {
			combined = dtype.CloneDense(mine)
			if err := op.Apply(prefix, combined); err != nil {
				return nil, err
			}
		}
		wire, err := dtype.EncodeDense(combined)
		if err != nil {
			return nil, err
		}
		if err := c.send(c.Rank+1, tagScan, wire); err != nil {
			return nil, err
		}
	}
	return prefix, nil
}
