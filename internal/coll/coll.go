package coll

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"gompi/internal/core"
	"gompi/internal/dtype"
)

// Comm is the collective layer's view of a communicator: the rank's
// progress engine, the communicator's reserved collective context, the
// caller's group rank and size, and the group-rank→world-rank map.
// Collectives on one communicator must be started by all members in the
// same order (the MPI rule); the per-instance tags minted from seq rely
// on it, and in return let any number of collectives overlap in flight
// without cross-matching.
type Comm struct {
	P     *core.Proc
	Ctx   int32
	Rank  int
	Size  int
	World func(groupRank int) int

	// seq numbers the collective instances started on this
	// communicator: exactly one per collective call, minted at
	// schedule-creation time, synchronously inside the call and before
	// any validation. Every member starts collectives in the same
	// order, so the sequence-derived tags agree across ranks.
	seq atomic.Uint32

	// rseq numbers the fault-tolerant agreement rounds (see agree.go)
	// separately from seq: after a failure, survivors may have
	// abandoned data collectives at different points — seq is no
	// longer aligned across ranks — but they enter recovery with the
	// same Agree/Shrink call sequence, so a dedicated counter keeps
	// the repair traffic's tags aligned.
	rseq atomic.Uint32

	// obs caches this communicator's performance-variable handles
	// (see obs.go); the zero value resolves lazily on first use.
	obs commObs
}

// Internal tag families, one per collective family, in the low
// tagFamBits bits of the matching tag; the instance sequence number
// occupies the bits above. Distinct families keep unrelated collectives
// apart even across the (enormous) sequence wrap-around.
const (
	tagBarrier = iota + 1
	tagBcast
	tagGather
	tagScatter
	tagAllgather
	tagAlltoall
	tagReduce
	tagScan
	// tagExscan is Exscan's own family: Scan and Exscan traffic must
	// never cross-match, even back to back on one communicator.
	tagExscan
	// tagAgree is the fault-tolerant agreement's family (see agree.go).
	// Its instances additionally carry core.RecoveryTag so they survive
	// communicator revocation.
	tagAgree
	// tagPlan0 is the first of the families reserved for Plan-composed
	// schedules (see plan.go): each communication primitive added to a
	// Plan draws the next family, so a composed schedule may use the
	// same primitive (e.g. two alltoalls in a two-phase read) without
	// its rounds cross-matching.
	tagPlan0
)

const (
	tagFamBits = 4
	// seqPeriod keeps tags inside the engine's positive 30-bit tag
	// range; 2^26 in-flight collectives would be needed to collide.
	seqPeriod = 1 << 26
)

// SkipInstance advances the collective sequence without running a
// collective. Callers that abort a collective before building its
// schedule (local argument errors in the binding layer) use it to stay
// tag-aligned with members whose matching call proceeded.
func (c *Comm) SkipInstance() { c.seq.Add(1) }

// rel maps a group rank to its rank relative to root; unrel inverts it.
func rel(rank, root, size int) int { return (rank - root + size) % size }

func unrel(vr, root, size int) int { return (vr + root) % size }

func (c *Comm) check(root int) error {
	if root < 0 || root >= c.Size {
		return fmt.Errorf("coll: root rank %d out of range [0,%d)", root, c.Size)
	}
	return nil
}

// topMask returns the power of two at or above size (the binomial
// trees' starting mask before the first halving).
func topMask(size int) int {
	top := 1
	for top < size {
		top <<= 1
	}
	return top
}

// ---------------------------------------------------------------------
// Schedule builders. Each appends one algorithm's steps to a schedule,
// allocating its instance tags as it goes; composed collectives
// (allreduce over reduce+bcast, reduce-scatter over reduce+scatter)
// chain builders, threading mid-schedule values through pointers.
//
// Two conventions make the schedules pool- and persistent-ready: waits
// for messages go through recvStep/exchStep (post step + gated consume
// step — the executor parks rather than blocks), and every piece of
// mutable per-activation state is initialized in an onReset hook rather
// than at build time, so a persistent schedule re-arms cleanly on each
// Start.
// ---------------------------------------------------------------------

// addBarrierSteps schedules the dissemination barrier: ⌈log2 p⌉ rounds
// of shifted token exchanges.
func (c *Comm) addBarrierSteps(s *sched) {
	tag := s.tag(tagBarrier)
	for k := 1; k < c.Size; k <<= 1 {
		dst := (c.Rank + k) % c.Size
		src := (c.Rank - k + c.Size) % c.Size
		s.exchStep(dst, src, tag,
			func() ([]byte, error) { return nil, nil },
			func([]byte) error { return nil })
	}
}

// addBcastSteps schedules a binomial-tree broadcast: at completion
// *data holds root's payload on every member.
func (c *Comm) addBcastSteps(s *sched, root int, data *[]byte) {
	tag := s.tag(tagBcast)
	vr := rel(c.Rank, root, c.Size)
	start := topMask(c.Size) >> 1
	if vr != 0 {
		low := vr & -vr // subtree parent sits at the lowest set bit
		s.recvStep(unrel(vr-low, root, c.Size), tag, func(got []byte) error {
			*data = got
			return nil
		})
		start = low >> 1
	}
	for mask := start; mask > 0; mask >>= 1 {
		if vr+mask >= c.Size {
			continue
		}
		mask := mask
		s.step(func() error {
			return s.isend(unrel(vr+mask, root, c.Size), tag, *data)
		})
	}
}

// bundle encoding: u32 count, then per block u32 vrank, u32 len, bytes.
func encodeBundle(blocks map[int][]byte) []byte {
	n := 4
	for _, b := range blocks {
		n += 8 + len(b)
	}
	out := make([]byte, 0, n)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(blocks)))
	for vr, b := range blocks {
		out = binary.LittleEndian.AppendUint32(out, uint32(vr))
		out = binary.LittleEndian.AppendUint32(out, uint32(len(b)))
		out = append(out, b...)
	}
	return out
}

func decodeBundle(data []byte, into map[int][]byte) error {
	if len(data) < 4 {
		return fmt.Errorf("coll: short bundle")
	}
	n := int(binary.LittleEndian.Uint32(data))
	data = data[4:]
	for i := 0; i < n; i++ {
		if len(data) < 8 {
			return fmt.Errorf("coll: truncated bundle header")
		}
		vr := int(binary.LittleEndian.Uint32(data))
		ln := int(binary.LittleEndian.Uint32(data[4:]))
		data = data[8:]
		if len(data) < ln {
			return fmt.Errorf("coll: truncated bundle block")
		}
		into[vr] = data[:ln:ln]
		data = data[ln:]
	}
	return nil
}

// addGatherSteps schedules a binomial-tree gather of every member's
// block (*mine) toward root; at completion *out (root only) holds the
// blocks indexed by group rank.
func (c *Comm) addGatherSteps(s *sched, root int, mine *[]byte, out *[][]byte) {
	tag := s.tag(tagGather)
	vr := rel(c.Rank, root, c.Size)
	var have map[int][]byte
	s.onReset(func() { have = make(map[int][]byte) })
	s.step(func() error { have[vr] = *mine; return nil })
	for mask := 1; mask < c.Size; mask <<= 1 {
		mask := mask
		if vr&mask != 0 {
			s.step(func() error {
				return s.isend(unrel(vr-mask, root, c.Size), tag, encodeBundle(have))
			})
			return // subtree forwarded; this member is done
		}
		if vr+mask < c.Size {
			s.recvStep(unrel(vr+mask, root, c.Size), tag, func(got []byte) error {
				return decodeBundle(got, have)
			})
		}
	}
	// vr == 0: assemble at root.
	s.step(func() error {
		res := make([][]byte, c.Size)
		for v, b := range have {
			res[unrel(v, root, c.Size)] = b
		}
		*out = res
		return nil
	})
}

// addScatterSteps schedules the binomial-tree scatter of *parts
// (indexed by group rank, significant at root); at completion *out
// holds this member's block. Blocks may have different sizes, so the
// same schedule serves Scatterv. The public entry points validate the
// root's parts length at build time; composed schedules construct
// *parts mid-run, so the root step re-checks.
func (c *Comm) addScatterSteps(s *sched, root int, parts *[][]byte, out *[]byte) {
	tag := s.tag(tagScatter)
	vr := rel(c.Rank, root, c.Size)
	var have map[int][]byte
	s.onReset(func() { have = make(map[int][]byte) })
	var start int
	if vr == 0 {
		s.step(func() error {
			if len(*parts) != c.Size {
				return fmt.Errorf("coll: scatter with %d parts for %d ranks", len(*parts), c.Size)
			}
			for r, b := range *parts {
				have[rel(r, root, c.Size)] = b
			}
			return nil
		})
		start = topMask(c.Size) >> 1
	} else {
		low := vr & -vr
		s.recvStep(unrel(vr-low, root, c.Size), tag, func(got []byte) error {
			return decodeBundle(got, have)
		})
		start = low >> 1
	}
	for mask := start; mask > 0; mask >>= 1 {
		if vr+mask >= c.Size {
			continue
		}
		mask := mask
		s.step(func() error {
			sub := make(map[int][]byte)
			hi := vr + 2*mask
			if hi > c.Size {
				hi = c.Size
			}
			for v := vr + mask; v < hi; v++ {
				if b, ok := have[v]; ok {
					sub[v] = b
					delete(have, v)
				}
			}
			return s.isend(unrel(vr+mask, root, c.Size), tag, encodeBundle(sub))
		})
	}
	s.step(func() error { *out = have[vr]; return nil })
}

// addAllgatherSteps schedules the ring allgather (p-1 shifted steps);
// at completion *out holds every member's block (*mine is re-read each
// activation). Blocks may differ in size, so this also serves
// Allgatherv.
func (c *Comm) addAllgatherSteps(s *sched, mine *[]byte, out *[][]byte) {
	c.addAllgatherStepsFam(s, tagAllgather, mine, out)
}

// addAllgatherStepsFam is addAllgatherSteps under an explicit tag
// family, for Plan-composed schedules.
func (c *Comm) addAllgatherStepsFam(s *sched, family int, mine *[]byte, out *[][]byte) {
	tag := s.tag(family)
	right := (c.Rank + 1) % c.Size
	left := (c.Rank - 1 + c.Size) % c.Size
	var blocks [][]byte
	var cur []byte
	s.onReset(func() {
		blocks = make([][]byte, c.Size)
		blocks[c.Rank] = *mine
		cur = *mine
	})
	for st := 0; st < c.Size-1; st++ {
		st := st
		s.exchStep(right, left, tag,
			func() ([]byte, error) { return cur, nil },
			func(in []byte) error {
				origin := (c.Rank - st - 1 + c.Size) % c.Size
				blocks[origin] = in
				cur = in
				return nil
			})
	}
	s.step(func() error { *out = blocks; return nil })
}

// addAlltoallSteps schedules the pairwise-exchange alltoall: parts[j]
// reaches member j; at completion *out holds the blocks received from
// every member. Variable block sizes make it also serve Alltoallv.
func (c *Comm) addAlltoallSteps(s *sched, parts [][]byte, out *[][]byte) {
	c.addAlltoallStepsFam(s, tagAlltoall, parts, out)
}

// addAlltoallStepsFam is addAlltoallSteps under an explicit tag family.
// parts contents are read lazily inside the steps, so a Plan may fill
// the (pre-sized) slice from an earlier step of the same schedule.
func (c *Comm) addAlltoallStepsFam(s *sched, family int, parts [][]byte, out *[][]byte) {
	tag := s.tag(family)
	var res [][]byte
	s.onReset(func() { res = make([][]byte, c.Size) })
	for st := 1; st < c.Size; st++ {
		dst := (c.Rank + st) % c.Size
		src := (c.Rank - st + c.Size) % c.Size
		s.exchStep(dst, src, tag,
			func() ([]byte, error) { return parts[dst], nil },
			func(in []byte) error { res[src] = in; return nil })
	}
	s.step(func() error { res[c.Rank] = parts[c.Rank]; *out = res; return nil })
}

// addReduceSteps schedules the reduction of *mine toward root (the
// pointed-to dense slice must be valid at build time, and is re-read on
// each activation); at completion *out (root only) holds the folded
// dense slice. Commutative ops fold up a binomial tree; non-commutative
// ops gather at root and fold in strict rank order.
func (c *Comm) addReduceSteps(s *sched, root int, mine *any, op *Op, out *any) {
	if !op.Commutative {
		c.addOrderedReduceSteps(s, root, mine, op, out)
		return
	}
	tag := s.tag(tagReduce)
	vr := rel(c.Rank, root, c.Size)
	cls, _ := dtype.ClassOf(*mine)
	var acc any
	s.onReset(func() { acc = dtype.CloneDense(*mine) })
	for mask := 1; mask < c.Size; mask <<= 1 {
		mask := mask
		if vr&mask != 0 {
			s.step(func() error {
				wire, err := dtype.EncodeDense(acc)
				if err != nil {
					return err
				}
				return s.isend(unrel(vr-mask, root, c.Size), tag, wire)
			})
			return // contribution forwarded; this member is done
		}
		if vr+mask < c.Size {
			s.recvStep(unrel(vr+mask, root, c.Size), tag, func(got []byte) error {
				partial, err := dtype.DecodeDense(got, cls)
				if err != nil {
					return err
				}
				// acc holds lower-rank contributions: fold acc into
				// partial, then adopt partial as the accumulator.
				if err := op.Apply(acc, partial); err != nil {
					return err
				}
				acc = partial
				return nil
			})
		}
	}
	s.step(func() error { *out = acc; return nil })
}

// addOrderedReduceSteps gathers all contributions at root and folds
// them in strict rank order, as required for non-commutative
// operations.
func (c *Comm) addOrderedReduceSteps(s *sched, root int, mine *any, op *Op, out *any) {
	var wire []byte
	var blocks [][]byte
	s.step(func() error {
		w, err := dtype.EncodeDense(*mine)
		wire = w
		return err
	})
	c.addGatherSteps(s, root, &wire, &blocks)
	if rel(c.Rank, root, c.Size) != 0 {
		return
	}
	s.step(func() error {
		cls, _ := dtype.ClassOf(*mine)
		acc, err := dtype.DecodeDense(blocks[0], cls)
		if err != nil {
			return err
		}
		for r := 1; r < c.Size; r++ {
			next, err := dtype.DecodeDense(blocks[r], cls)
			if err != nil {
				return err
			}
			if err := op.Apply(acc, next); err != nil {
				return err
			}
			acc = next
		}
		*out = acc
		return nil
	})
}

// addAllreduceSteps schedules the all-reduction of *mine (valid at
// build, re-read per activation); at completion *out holds the folded
// dense slice on every member. Commutative ops use recursive doubling
// with the standard non-power-of-two pre/post folding; non-commutative
// ops reduce to rank 0 and broadcast.
func (c *Comm) addAllreduceSteps(s *sched, mine *any, op *Op, out *any) {
	cls, _ := dtype.ClassOf(*mine)
	if !op.Commutative {
		var res any
		c.addReduceSteps(s, 0, mine, op, &res)
		var wire []byte
		s.step(func() error {
			if c.Rank != 0 {
				return nil
			}
			w, err := dtype.EncodeDense(res)
			wire = w
			return err
		})
		c.addBcastSteps(s, 0, &wire)
		s.step(func() error {
			v, err := dtype.DecodeDense(wire, cls)
			if err != nil {
				return err
			}
			*out = v
			return nil
		})
		return
	}

	tag := s.tag(tagReduce)
	var acc any
	s.onReset(func() { acc = dtype.CloneDense(*mine) })
	p2 := 1
	for p2*2 <= c.Size {
		p2 *= 2
	}
	remainder := c.Size - p2

	newRank := -1
	switch {
	case c.Rank < 2*remainder && c.Rank%2 == 0:
		// Fold into the odd neighbour, then idle until the post-fold.
		s.step(func() error {
			wire, err := dtype.EncodeDense(acc)
			if err != nil {
				return err
			}
			return s.isend(c.Rank+1, tag, wire)
		})
	case c.Rank < 2*remainder:
		s.recvStep(c.Rank-1, tag, func(got []byte) error {
			lower, err := dtype.DecodeDense(got, cls)
			if err != nil {
				return err
			}
			return op.Apply(lower, acc)
		})
		newRank = c.Rank / 2
	default:
		newRank = c.Rank - remainder
	}

	realOf := func(nr int) int {
		if nr < remainder {
			return nr*2 + 1
		}
		return nr + remainder
	}

	if newRank >= 0 {
		for mask := 1; mask < p2; mask <<= 1 {
			partner := newRank ^ mask
			s.exchStep(realOf(partner), realOf(partner), tag,
				func() ([]byte, error) { return dtype.EncodeDense(acc) },
				func(got []byte) error {
					theirs, err := dtype.DecodeDense(got, cls)
					if err != nil {
						return err
					}
					if partner < newRank {
						return op.Apply(theirs, acc)
					}
					if err := op.Apply(acc, theirs); err != nil {
						return err
					}
					acc = theirs
					return nil
				})
		}
	}

	// Post-fold: odd members of the front block return results to the
	// idled even members.
	if c.Rank < 2*remainder {
		if c.Rank%2 == 0 {
			s.recvStep(c.Rank+1, tag, func(got []byte) error {
				v, err := dtype.DecodeDense(got, cls)
				if err != nil {
					return err
				}
				acc = v
				return nil
			})
		} else {
			s.step(func() error {
				wire, err := dtype.EncodeDense(acc)
				if err != nil {
					return err
				}
				return s.isend(c.Rank-1, tag, wire)
			})
		}
	}
	s.step(func() error { *out = acc; return nil })
}

// addScanSteps schedules the rank-order prefix chain shared by Scan and
// Exscan (family selects the tag family, exclusive the variant): at
// completion *out holds the inclusive prefix (Scan) or the prefix of
// ranks 0..r-1 (Exscan; nil at rank 0, whose result is undefined per
// the standard). The chain preserves non-commutative operation order by
// construction.
func (c *Comm) addScanSteps(s *sched, family int, exclusive bool, mine *any, op *Op, out *any) {
	tag := s.tag(family)
	cls, _ := dtype.ClassOf(*mine)
	var prefix, incl any
	if c.Rank > 0 {
		s.recvStep(c.Rank-1, tag, func(got []byte) error {
			var err error
			prefix, err = dtype.DecodeDense(got, cls)
			return err
		})
	}
	// The last rank's inclusive prefix is neither forwarded nor, in
	// exclusive mode, published — skip the clone-and-fold there.
	if !exclusive || c.Rank < c.Size-1 {
		s.step(func() error {
			incl = dtype.CloneDense(*mine)
			if c.Rank == 0 {
				return nil
			}
			return op.Apply(prefix, incl)
		})
	}
	if c.Rank < c.Size-1 {
		s.step(func() error {
			wire, err := dtype.EncodeDense(incl)
			if err != nil {
				return err
			}
			return s.isend(c.Rank+1, tag, wire)
		})
	}
	s.step(func() error {
		if exclusive {
			*out = prefix
		} else {
			*out = incl
		}
		return nil
	})
}

// addReduceScatterSteps schedules the fold-then-scatter: member r ends
// up with counts[r] elements of the result in *out.
func (c *Comm) addReduceScatterSteps(s *sched, mine *any, counts []int, op *Op, out *any) {
	var res any
	c.addReduceSteps(s, 0, mine, op, &res)
	var parts [][]byte
	s.step(func() error {
		if c.Rank != 0 {
			return nil
		}
		parts = make([][]byte, c.Size)
		lo := 0
		for r, n := range counts {
			seg := dtype.SliceDense(res, lo, lo+n)
			w, err := dtype.EncodeDense(seg)
			if err != nil {
				return err
			}
			parts[r] = w
			lo += n
		}
		return nil
	})
	var wire []byte
	c.addScatterSteps(s, 0, &parts, &wire)
	s.step(func() error {
		cls, _ := dtype.ClassOf(*mine)
		v, err := dtype.DecodeDense(wire, cls)
		if err != nil {
			return err
		}
		*out = v
		return nil
	})
}

// ---------------------------------------------------------------------
// Entry points. Every collective has a nonblocking I* form returning a
// *Request and a blocking form that runs the identical schedule inline.
// ---------------------------------------------------------------------

// Ibarrier starts a nonblocking barrier: the returned request completes
// once every member has entered the matching Ibarrier/Barrier call.
func (c *Comm) Ibarrier() *Request {
	s := c.newSched()
	c.addBarrierSteps(s)
	return s.start()
}

// Barrier blocks until every member has entered it.
func (c *Comm) Barrier() error {
	s := c.newSched()
	c.addBarrierSteps(s)
	_, err := s.runInline()
	return err
}

func (c *Comm) bcastSched(root int, data []byte) (*sched, error) {
	s := c.newSched() // mint the instance before validation
	if err := c.check(root); err != nil {
		return nil, err
	}
	buf := data
	c.addBcastSteps(s, root, &buf)
	s.publish(func() any { return buf })
	return s, nil
}

// Ibcast starts a nonblocking broadcast of root's payload; the
// completed request's result is the payload ([]byte) on every member.
func (c *Comm) Ibcast(root int, data []byte) (*Request, error) {
	s, err := c.bcastSched(root, data)
	if err != nil {
		return nil, err
	}
	return s.start(), nil
}

// Bcast distributes root's payload to every member along a binomial
// tree and returns it (the root gets its own slice back).
func (c *Comm) Bcast(root int, data []byte) ([]byte, error) {
	s, err := c.bcastSched(root, data)
	if err != nil {
		return nil, err
	}
	res, err := s.runInline()
	if err != nil {
		return nil, err
	}
	return res.([]byte), nil
}

func (c *Comm) gatherSched(root int, mine []byte) (*sched, error) {
	s := c.newSched() // mint the instance before validation
	if err := c.check(root); err != nil {
		return nil, err
	}
	in := mine
	var blocks [][]byte
	c.addGatherSteps(s, root, &in, &blocks)
	s.publish(func() any { return blocks })
	return s, nil
}

// Igather starts a nonblocking gather; the completed request's result
// is the per-rank blocks ([][]byte) at root, nil elsewhere.
func (c *Comm) Igather(root int, mine []byte) (*Request, error) {
	s, err := c.gatherSched(root, mine)
	if err != nil {
		return nil, err
	}
	return s.start(), nil
}

// Gather collects every member's block at root along a binomial tree.
// At root the result is indexed by group rank; other ranks get nil.
func (c *Comm) Gather(root int, mine []byte) ([][]byte, error) {
	s, err := c.gatherSched(root, mine)
	if err != nil {
		return nil, err
	}
	res, err := s.runInline()
	if err != nil {
		return nil, err
	}
	return res.([][]byte), nil
}

func (c *Comm) scatterSched(root int, parts [][]byte) (*sched, error) {
	s := c.newSched() // mint the instance before validation
	if err := c.check(root); err != nil {
		return nil, err
	}
	if c.Rank == root && len(parts) != c.Size {
		return nil, fmt.Errorf("coll: scatter with %d parts for %d ranks", len(parts), c.Size)
	}
	p := parts
	var out []byte
	c.addScatterSteps(s, root, &p, &out)
	s.publish(func() any { return out })
	return s, nil
}

// Iscatter starts a nonblocking scatter of parts (indexed by group
// rank, significant at root only); the completed request's result is
// this member's block ([]byte).
func (c *Comm) Iscatter(root int, parts [][]byte) (*Request, error) {
	s, err := c.scatterSched(root, parts)
	if err != nil {
		return nil, err
	}
	return s.start(), nil
}

// Scatter distributes parts along a binomial tree; every member returns
// its own block. Blocks may have different sizes, so Scatter doubles as
// Scatterv.
func (c *Comm) Scatter(root int, parts [][]byte) ([]byte, error) {
	s, err := c.scatterSched(root, parts)
	if err != nil {
		return nil, err
	}
	res, err := s.runInline()
	if err != nil {
		return nil, err
	}
	return res.([]byte), nil
}

func (c *Comm) allgatherSched(mine []byte) *sched {
	s := c.newSched()
	in := mine
	var blocks [][]byte
	c.addAllgatherSteps(s, &in, &blocks)
	s.publish(func() any { return blocks })
	return s
}

// Iallgather starts a nonblocking allgather; the completed request's
// result is every member's block ([][]byte).
func (c *Comm) Iallgather(mine []byte) *Request {
	return c.allgatherSched(mine).start()
}

// Allgather collects every member's block at every member.
func (c *Comm) Allgather(mine []byte) ([][]byte, error) {
	res, err := c.allgatherSched(mine).runInline()
	if err != nil {
		return nil, err
	}
	return res.([][]byte), nil
}

func (c *Comm) alltoallSched(parts [][]byte) (*sched, error) {
	s := c.newSched() // mint the instance before validation
	if len(parts) != c.Size {
		return nil, fmt.Errorf("coll: alltoall with %d parts for %d ranks", len(parts), c.Size)
	}
	var out [][]byte
	c.addAlltoallSteps(s, parts, &out)
	s.publish(func() any { return out })
	return s, nil
}

// Ialltoall starts a nonblocking alltoall; the completed request's
// result is the blocks received from every member ([][]byte).
func (c *Comm) Ialltoall(parts [][]byte) (*Request, error) {
	s, err := c.alltoallSched(parts)
	if err != nil {
		return nil, err
	}
	return s.start(), nil
}

// Alltoall delivers parts[j] to member j and returns the blocks
// received from every member.
func (c *Comm) Alltoall(parts [][]byte) ([][]byte, error) {
	s, err := c.alltoallSched(parts)
	if err != nil {
		return nil, err
	}
	res, err := s.runInline()
	if err != nil {
		return nil, err
	}
	return res.([][]byte), nil
}

func (c *Comm) reduceSched(root int, mine any, op *Op) (*sched, error) {
	s := c.newSched() // mint the instance before validation
	if err := c.check(root); err != nil {
		return nil, err
	}
	in := mine
	var res any
	c.addReduceSteps(s, root, &in, op, &res)
	s.publish(func() any { return res })
	return s, nil
}

// Ireduce starts a nonblocking reduction toward root; the completed
// request's result is the folded dense slice at root, nil elsewhere.
func (c *Comm) Ireduce(root int, mine any, op *Op) (*Request, error) {
	s, err := c.reduceSched(root, mine, op)
	if err != nil {
		return nil, err
	}
	return s.start(), nil
}

// Reduce folds every member's dense slice with op, leaving the result
// at root (returned there; nil elsewhere).
func (c *Comm) Reduce(root int, mine any, op *Op) (any, error) {
	s, err := c.reduceSched(root, mine, op)
	if err != nil {
		return nil, err
	}
	return s.runInline()
}

func (c *Comm) allreduceSched(mine any, op *Op) *sched {
	s := c.newSched()
	in := mine
	var res any
	c.addAllreduceSteps(s, &in, op, &res)
	s.publish(func() any { return res })
	return s
}

// Iallreduce starts a nonblocking all-reduction; the completed
// request's result is the folded dense slice on every member.
func (c *Comm) Iallreduce(mine any, op *Op) *Request {
	return c.allreduceSched(mine, op).start()
}

// Allreduce folds every member's dense slice with op and returns the
// result at every member.
func (c *Comm) Allreduce(mine any, op *Op) (any, error) {
	return c.allreduceSched(mine, op).runInline()
}

func (c *Comm) scanSched(family int, exclusive bool, mine any, op *Op) *sched {
	s := c.newSched()
	in := mine
	var res any
	c.addScanSteps(s, family, exclusive, &in, op, &res)
	s.publish(func() any { return res })
	return s
}

// Iscan starts a nonblocking inclusive prefix reduction in rank order;
// the completed request's result is member r's fold over ranks 0..r.
func (c *Comm) Iscan(mine any, op *Op) *Request {
	return c.scanSched(tagScan, false, mine, op).start()
}

// Scan computes the inclusive prefix reduction in rank order along a
// chain.
func (c *Comm) Scan(mine any, op *Op) (any, error) {
	return c.scanSched(tagScan, false, mine, op).runInline()
}

// Iexscan starts a nonblocking exclusive prefix reduction in rank
// order; member r's result is the fold over ranks 0..r-1 (nil at rank
// 0, whose result is undefined).
func (c *Comm) Iexscan(mine any, op *Op) *Request {
	return c.scanSched(tagExscan, true, mine, op).start()
}

// Exscan computes the exclusive prefix reduction in rank order (the
// MPI-2 extension the paper's §5.3 targets).
func (c *Comm) Exscan(mine any, op *Op) (any, error) {
	return c.scanSched(tagExscan, true, mine, op).runInline()
}

func (c *Comm) reduceScatterSched(mine any, counts []int, op *Op) (*sched, error) {
	s := c.newSched() // mint the instance before validation
	if len(counts) != c.Size {
		return nil, fmt.Errorf("coll: reduce_scatter with %d counts for %d ranks", len(counts), c.Size)
	}
	in := mine
	var res any
	c.addReduceScatterSteps(s, &in, counts, op, &res)
	s.publish(func() any { return res })
	return s, nil
}

// IreduceScatter starts a nonblocking fold-and-scatter; the completed
// request's result is member r's counts[r]-element segment.
func (c *Comm) IreduceScatter(mine any, counts []int, op *Op) (*Request, error) {
	s, err := c.reduceScatterSched(mine, counts, op)
	if err != nil {
		return nil, err
	}
	return s.start(), nil
}

// ReduceScatter folds with op, then scatters consecutive segments of
// the result: member r receives counts[r] elements.
func (c *Comm) ReduceScatter(mine any, counts []int, op *Op) (any, error) {
	s, err := c.reduceScatterSched(mine, counts, op)
	if err != nil {
		return nil, err
	}
	return s.runInline()
}

// AgreeContextBase agrees on a context-id base for a new communicator:
// the max of all members' local candidates, via Allreduce over this
// (parent) communicator's collective context.
func (c *Comm) AgreeContextBase() (int32, error) {
	cand := []int32{c.P.AllocContexts()}
	res, err := c.Allreduce(cand, Max)
	if err != nil {
		return 0, err
	}
	base := res.([]int32)[0]
	c.P.CommitContexts(base)
	return base, nil
}
