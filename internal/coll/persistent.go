package coll

import (
	"fmt"
	"sync"
)

// Persistent is a cached, re-runnable collective schedule — the engine
// half of MPI-4 persistent collectives. It is built once (validation,
// tag minting, step compilation all happen at *Init time, in program
// order like any collective call) and then activated any number of
// times with Start, each activation running the frozen schedule on the
// shared progress pool with near-zero setup cost.
//
// The *Init constructors take pointers to the operation's inputs: each
// activation re-reads them, so the binding layer can re-pack the user's
// (fixed) buffers before every Start — MPI's persistent-operation
// contract. Tags are minted once and reused: a member must complete
// activation k before starting k+1 (Start enforces it locally), which
// keeps successive activations' traffic aligned pair-wise without new
// tags.
type Persistent struct {
	s *sched

	mu     sync.Mutex
	active *Request
	err    error // poisoned: set once the operation can no longer restart
	freed  bool
}

// Start begins a new activation and returns its request. The previous
// activation must have completed (ErrActive otherwise); an activation
// that completed with an error — cancellation, peer loss, revocation —
// poisons the operation, and every later Start returns that error.
func (p *Persistent) Start() (*Request, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.freed {
		return nil, fmt.Errorf("coll: Start on a freed persistent operation")
	}
	if p.err != nil {
		return nil, p.err
	}
	if p.active != nil {
		_, done, err := p.active.Test()
		if !done {
			return nil, ErrActive
		}
		if err != nil {
			p.err = fmt.Errorf("coll: persistent operation poisoned by failed activation: %w", err)
			return nil, p.err
		}
	}
	p.s.rearm()
	p.active = p.s.req
	sharedPool.enqueue(p.s)
	return p.active, nil
}

// Free retires the operation. The current activation, if any, is left
// to complete; further Starts fail.
func (p *Persistent) Free() {
	p.mu.Lock()
	p.freed = true
	p.mu.Unlock()
}

// ---------------------------------------------------------------------
// Persistent constructors, one per collective. Each mints its instance
// (so Init calls follow the same program-order rule as the collectives
// themselves), validates once, and compiles the schedule against the
// caller's pointers.
// ---------------------------------------------------------------------

// BarrierInit builds a persistent barrier.
func (c *Comm) BarrierInit() *Persistent {
	s := c.newSched()
	c.addBarrierSteps(s)
	return &Persistent{s: s}
}

// BcastInit builds a persistent broadcast: each activation distributes
// *data (re-read at Start) from root, completing with the payload
// ([]byte) on every member.
func (c *Comm) BcastInit(root int, data *[]byte) (*Persistent, error) {
	s := c.newSched() // mint the instance before validation
	if err := c.check(root); err != nil {
		return nil, err
	}
	c.addBcastSteps(s, root, data)
	s.publish(func() any { return *data })
	return &Persistent{s: s}, nil
}

// GatherInit builds a persistent gather of *mine toward root; each
// activation completes with the per-rank blocks ([][]byte) at root.
func (c *Comm) GatherInit(root int, mine *[]byte) (*Persistent, error) {
	s := c.newSched() // mint the instance before validation
	if err := c.check(root); err != nil {
		return nil, err
	}
	var blocks [][]byte
	c.addGatherSteps(s, root, mine, &blocks)
	s.publish(func() any { return blocks })
	return &Persistent{s: s}, nil
}

// AllgatherInit builds a persistent allgather of *mine; each activation
// completes with every member's block ([][]byte).
func (c *Comm) AllgatherInit(mine *[]byte) *Persistent {
	s := c.newSched()
	var blocks [][]byte
	c.addAllgatherSteps(s, mine, &blocks)
	s.publish(func() any { return blocks })
	return &Persistent{s: s}
}

// ReduceInit builds a persistent reduction of *mine toward root. The
// pointed-to dense slice must already be valid at Init time (its class
// fixes the algorithm) and is re-read on every activation.
func (c *Comm) ReduceInit(root int, mine *any, op *Op) (*Persistent, error) {
	s := c.newSched() // mint the instance before validation
	if err := c.check(root); err != nil {
		return nil, err
	}
	var res any
	c.addReduceSteps(s, root, mine, op, &res)
	s.publish(func() any { return res })
	return &Persistent{s: s}, nil
}

// AllreduceInit builds a persistent all-reduction of *mine (valid at
// Init, re-read per activation); each activation completes with the
// folded dense slice on every member.
func (c *Comm) AllreduceInit(mine *any, op *Op) *Persistent {
	s := c.newSched()
	var res any
	c.addAllreduceSteps(s, mine, op, &res)
	s.publish(func() any { return res })
	return &Persistent{s: s}
}

// ScanInit builds a persistent inclusive prefix reduction.
func (c *Comm) ScanInit(mine *any, op *Op) *Persistent {
	s := c.newSched()
	var res any
	c.addScanSteps(s, tagScan, false, mine, op, &res)
	s.publish(func() any { return res })
	return &Persistent{s: s}
}

// ExscanInit builds a persistent exclusive prefix reduction.
func (c *Comm) ExscanInit(mine *any, op *Op) *Persistent {
	s := c.newSched()
	var res any
	c.addScanSteps(s, tagExscan, true, mine, op, &res)
	s.publish(func() any { return res })
	return &Persistent{s: s}
}
