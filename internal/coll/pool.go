package coll

import (
	"os"
	"runtime"
	"sync"
)

// forcePool routes the blocking collective entry points through the
// shared progress pool too (instead of their inline executor), so one
// environment switch drives every collective test through the
// park/resume machinery. CI runs the conformance suite this way.
var forcePool = os.Getenv("GOMPI_COLL_POOL") == "force"

// progressPool executes collective schedules on a small shared set of
// workers, O(cores) for the whole process no matter how many
// communicators or in-flight collectives exist. Schedules never block a
// worker waiting for a message: they park (see sched.park) and are
// re-enqueued by the engine's completion callback, so a bounded worker
// set cannot deadlock on cross-rank message dependencies — a parked
// schedule occupies no worker at all.
type progressPool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	q       []*sched // FIFO of runnable schedules
	head    int
	idle    int // workers blocked waiting for work
	workers int // workers spawned so far, capped at max
	max     int
}

// sharedPool is the process-wide pool. Workers are spawned lazily, up
// to GOMAXPROCS, and persist for the life of the process.
var sharedPool = func() *progressPool {
	p := &progressPool{max: runtime.GOMAXPROCS(0)}
	if p.max < 1 {
		p.max = 1
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}()

// MaxPoolWorkers reports the pool's worker cap (for tests asserting the
// O(cores) goroutine bound).
func MaxPoolWorkers() int { return sharedPool.max }

// enqueue makes s runnable. It never blocks and takes only the pool's
// own lock: completion callbacks invoke it under the engine lock.
func (p *progressPool) enqueue(s *sched) {
	p.mu.Lock()
	p.q = append(p.q, s)
	switch {
	case p.idle > 0:
		p.cond.Signal()
	case p.workers < p.max:
		p.workers++
		go p.worker()
	}
	p.mu.Unlock()
}

func (p *progressPool) worker() {
	p.mu.Lock()
	for {
		for p.head == len(p.q) {
			p.q = p.q[:0]
			p.head = 0
			p.idle++
			p.cond.Wait()
			p.idle--
		}
		s := p.q[p.head]
		p.q[p.head] = nil
		p.head++
		p.mu.Unlock()
		s.run()
		p.mu.Lock()
	}
}
