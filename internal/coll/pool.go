package coll

import (
	"os"
	"runtime"
	"sync"
	"sync/atomic"
)

// forcePool routes the blocking collective entry points through the
// shared progress pool too (instead of their inline executor), so one
// environment switch drives every collective test through the
// park/resume machinery. CI runs the conformance suite this way.
var forcePool = os.Getenv("GOMPI_COLL_POOL") == "force"

// progressPool executes collective schedules on a small shared set of
// workers, O(cores) for the whole process no matter how many
// communicators or in-flight collectives exist. Schedules never block a
// worker waiting for a message: they park (see sched.park) and are
// re-enqueued by the engine's completion callback, so a bounded worker
// set cannot deadlock on cross-rank message dependencies — a parked
// schedule occupies no worker at all.
type progressPool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	q       []*sched // FIFO of runnable schedules
	head    int
	idle    int // workers blocked waiting for work
	workers int // workers spawned so far, capped at max
	max     int

	// Occupancy, tracked outside the pool lock so readers (EngineStats,
	// the pvar surface) never contend with the dispatch path: busy is
	// the workers currently executing a schedule, peakBusy the high
	// water mark over the process lifetime.
	busy     atomic.Int64
	peakBusy atomic.Int64
}

// sharedPool is the process-wide pool. Workers are spawned lazily, up
// to GOMAXPROCS, and persist for the life of the process.
var sharedPool = func() *progressPool {
	p := &progressPool{max: runtime.GOMAXPROCS(0)}
	if p.max < 1 {
		p.max = 1
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}()

// MaxPoolWorkers reports the pool's worker cap (for tests asserting the
// O(cores) goroutine bound).
func MaxPoolWorkers() int {
	sharedPool.mu.Lock()
	defer sharedPool.mu.Unlock()
	return sharedPool.max
}

// SetMaxPoolWorkers raises or lowers the pool's worker cap (the
// "coll.pool_max_workers" control variable). Lowering the cap does not
// kill workers already spawned — they drain and idle — but no new ones
// start above it.
func SetMaxPoolWorkers(n int) {
	if n < 1 {
		n = 1
	}
	sharedPool.mu.Lock()
	sharedPool.max = n
	sharedPool.mu.Unlock()
}

// PoolOccupancy is the shared progress pool's load read-out.
type PoolOccupancy struct {
	Busy     int // workers currently executing a schedule
	PeakBusy int // high water mark of Busy over the process lifetime
	Workers  int // workers spawned so far
	Max      int // worker cap
}

// PoolStats snapshots the shared pool's occupancy. The pool is
// process-wide: in-process multi-rank runs see one pool serving every
// rank.
func PoolStats() PoolOccupancy {
	p := sharedPool
	p.mu.Lock()
	workers, max := p.workers, p.max
	p.mu.Unlock()
	return PoolOccupancy{
		Busy:     int(p.busy.Load()),
		PeakBusy: int(p.peakBusy.Load()),
		Workers:  workers,
		Max:      max,
	}
}

// enqueue makes s runnable. It never blocks and takes only the pool's
// own lock: completion callbacks invoke it under the engine lock.
func (p *progressPool) enqueue(s *sched) {
	p.mu.Lock()
	p.q = append(p.q, s)
	switch {
	case p.idle > 0:
		p.cond.Signal()
	case p.workers < p.max:
		p.workers++
		go p.worker()
	}
	p.mu.Unlock()
}

func (p *progressPool) worker() {
	p.mu.Lock()
	for {
		for p.head == len(p.q) {
			p.q = p.q[:0]
			p.head = 0
			p.idle++
			p.cond.Wait()
			p.idle--
		}
		s := p.q[p.head]
		p.q[p.head] = nil
		p.head++
		p.mu.Unlock()
		b := p.busy.Add(1)
		for {
			pk := p.peakBusy.Load()
			if b <= pk || p.peakBusy.CompareAndSwap(pk, b) {
				break
			}
		}
		s.run()
		p.busy.Add(-1)
		p.mu.Lock()
	}
}
