package coll

import (
	"context"
	"errors"
	"sync"

	"gompi/internal/core"
)

// ErrCancelled is the completion error of a collective schedule that was
// torn down by context cancellation before it finished.
var ErrCancelled = errors.New("coll: collective cancelled")

// Request is a handle on an in-flight collective schedule. It completes
// exactly once, with the algorithm's result (shape depends on the
// collective) or an error; Wait, Test and WaitCtx may be called from any
// goroutine, concurrently. Requests handed out by the nonblocking entry
// points always carry their channels; schedules run inline keep them
// nil and never escape.
type Request struct {
	done     chan struct{}
	cancelCh chan struct{}
	cancel   sync.Once

	// Written by the schedule runner before done is closed.
	res any
	err error
}

// Wait blocks until the collective completes on this member and returns
// its result.
func (r *Request) Wait() (any, error) {
	<-r.done
	return r.res, r.err
}

// Test reports whether the collective has completed, returning the
// result if so.
func (r *Request) Test() (any, bool, error) {
	select {
	case <-r.done:
		return r.res, true, r.err
	default:
		return nil, false, nil
	}
}

// WaitCtx blocks until the collective completes or ctx is done. When ctx
// fires first the schedule is cancelled at its next cancellation point —
// every send/receive wait inside the algorithm is one — and WaitCtx
// returns ctx's error promptly, even when a peer never shows up.
//
// Cancellation abandons this member's participation in the collective
// instance: sends already posted stay with the engine (peers that
// progressed past them are unaffected), unposted rounds never run. Later
// collectives on the same communicator are isolated from the abandoned
// instance by its per-instance tag, but the MPI ordering rule still
// stands: every member must eventually make the same collective call,
// cancelled or not, or the members' schedules stop lining up.
//
// One caveat bounds the recovery guarantee: the abandoned member posts
// no further receives for the instance, so a payload above the eager
// limit still owed to it leaves the late sender's rendezvous — and with
// it that rank's matching (blocking) call — stalled forever. Ranks that
// mix cancellation into a communicator should use the cancellable *Ctx
// forms on every member, or keep cancellable collectives' payloads
// within the eager limit.
func (r *Request) WaitCtx(ctx context.Context) (any, error) {
	select {
	case <-r.done:
		return r.res, r.err
	default:
	}
	select {
	case <-r.done:
		return r.res, r.err
	case <-ctx.Done():
		r.cancel.Do(func() { close(r.cancelCh) })
		<-r.done
		switch {
		case r.err == nil:
			// The schedule won the race and completed normally.
			return r.res, nil
		case errors.Is(r.err, ErrCancelled):
			return nil, ctx.Err()
		default:
			// A genuine schedule failure raced the deadline; do not
			// mask it as a clean timeout.
			return nil, r.err
		}
	}
}

// step is one unit of a collective schedule: it posts nonblocking
// operations, waits (cancellably) on them, and folds received data into
// the algorithm's state.
type step func() error

// sched is one collective operation's schedule: the ordered steps the
// algorithm compiled into, the progress state they share, and the sends
// still in flight. A schedule is built synchronously inside the
// collective call (so tag allocation happens in program order on every
// member) and then executed either inline (blocking entry points) or on
// its own runner goroutine (nonblocking entry points).
type sched struct {
	c     *Comm
	inst  uint32 // this collective instance's sequence number
	req   *Request
	steps []step
	pend  []*core.Request // outstanding isends, drained at the end
	res   any             // published to req on successful completion
}

// newSched builds an empty schedule and mints its instance number —
// unconditionally, before any validation, so the sequence advances by
// exactly one per collective call on every member regardless of local
// outcomes. The request's channels stay nil until start(): the blocking
// entry points run inline, never select on them, and a nil cancelCh
// behaves like "never cancelled" in both cancellation points — so a
// blocking collective pays no channel allocations.
func (c *Comm) newSched() *sched {
	return &sched{c: c, inst: c.seq.Add(1) - 1, req: &Request{}}
}

// tag mints the matching tag for one family within this instance.
// Composed schedules (reduce-scatter, ordered allreduce) use several
// families under one instance number; no composition uses a family
// twice, so tags stay unique within the instance.
func (s *sched) tag(family int) int {
	return int(s.inst%seqPeriod)<<tagFamBits | family
}

func (s *sched) step(fn step) { s.steps = append(s.steps, fn) }

// publish appends the final step that snapshots the algorithm's result.
func (s *sched) publish(get func() any) {
	s.step(func() error { s.res = get(); return nil })
}

// start launches the schedule on its own progress goroutine and returns
// the request (the nonblocking entry points). The completion and
// cancellation channels are created here, before the runner exists, so
// every escaping request has them.
func (s *sched) start() *Request {
	s.req.done = make(chan struct{})
	s.req.cancelCh = make(chan struct{})
	go s.run()
	return s.req
}

// runInline executes the schedule to completion on the calling goroutine
// (the blocking entry points: same schedule, no runner handoff).
func (s *sched) runInline() (any, error) {
	s.run()
	return s.req.res, s.req.err
}

func (s *sched) run() {
	err := s.exec()
	if err == nil {
		s.req.res = s.res
	}
	s.req.err = err
	if s.req.done != nil {
		close(s.req.done)
	}
}

func (s *sched) exec() error {
	for _, fn := range s.steps {
		if s.cancelled() {
			s.abort()
			return ErrCancelled
		}
		if err := fn(); err != nil {
			s.abort()
			return err
		}
	}
	return s.drain()
}

func (s *sched) cancelled() bool {
	select {
	case <-s.req.cancelCh:
		return true
	default:
		return false
	}
}

// await blocks until r completes or the schedule is cancelled — the
// per-round cancellation point the context variants rely on. On
// cancellation it revokes r when the engine still can (an unmatched
// receive, an ungranted rendezvous send); an operation past that point
// is consumed so the engine's bookkeeping stays balanced, but the step
// still reports cancellation: the schedule is being torn down.
func (s *sched) await(r *core.Request) (*core.Status, error) {
	if st, done := r.Test(); done {
		return st, nil
	}
	done := r.Done()
	select {
	case <-done:
		return &r.Stat, nil
	case <-s.req.cancelCh:
	}
	if !s.c.P.Cancel(r) {
		<-done
	}
	return &r.Stat, ErrCancelled
}

// isend posts a standard-mode send on the schedule's context and tracks
// it for the completion drain. Collective payloads never carry the
// exclusive-ownership recycle promise: algorithms fan one buffer out to
// several destinations and forward received payloads.
func (s *sched) isend(dst, tag int, b []byte) error {
	req, err := s.c.P.Isend(s.c.Ctx, s.c.Rank, s.c.World(dst), tag, b, core.ModeStandard, false)
	if err != nil {
		return err
	}
	s.pend = append(s.pend, req)
	return nil
}

// recv posts a receive and waits for it cancellably, returning the
// payload with ownership transferred out of the engine.
func (s *sched) recv(src, tag int) ([]byte, error) {
	req := s.c.P.Irecv(s.c.Ctx, int32(src), int32(tag))
	st, err := s.await(req)
	if err != nil {
		req.Recycle()
		return nil, err
	}
	if st.Cancelled {
		req.Recycle()
		return nil, errors.New("coll: receive cancelled")
	}
	if rerr := st.Err; rerr != nil {
		// A peer died or the communicator was revoked mid-schedule:
		// surface it rather than fold a nil payload into the algorithm.
		// (Copied out first: st aliases the request Recycle re-pools.)
		req.Recycle()
		return nil, rerr
	}
	// Payload lifetime is unbounded here (algorithms forward and stash
	// blocks), so take it out of the request before recycling.
	b := req.TakePayload()
	req.Recycle()
	return b, nil
}

// sendrecv runs a concurrent exchange with two (possibly distinct)
// partners, the building block of the symmetric algorithms. The send's
// completion is left to the drain.
func (s *sched) sendrecv(dst, src, tag int, out []byte) ([]byte, error) {
	if err := s.isend(dst, tag, out); err != nil {
		return nil, err
	}
	return s.recv(src, tag)
}

// drain waits (cancellably) for the schedule's outstanding sends and
// recycles their requests.
func (s *sched) drain() error {
	for i, r := range s.pend {
		st, err := s.await(r)
		if err == nil && st.Err != nil {
			err = st.Err // send completed with a failure (peer loss, revocation)
		}
		if err != nil {
			r.Recycle()
			s.pend = s.pend[i+1:]
			s.abort()
			return err
		}
		r.Recycle()
	}
	s.pend = nil
	return nil
}

// abort tears down the outstanding sends after an error or
// cancellation: still-revocable sends (ungranted rendezvous) are
// cancelled and recycled; sends already with the engine are left to
// complete in the background (eager sends already have).
func (s *sched) abort() {
	for _, r := range s.pend {
		if s.c.P.Cancel(r) {
			r.Recycle()
			continue
		}
		if _, done := r.Test(); done {
			r.Recycle()
		}
		// Else: in flight; the engine completes it later and the
		// request is reclaimed by the garbage collector.
	}
	s.pend = nil
}
