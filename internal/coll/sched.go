package coll

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"gompi/internal/core"
	"gompi/internal/obs"
)

// ErrCancelled is the completion error of a collective schedule that was
// torn down by context cancellation before it finished.
var ErrCancelled = errors.New("coll: collective cancelled")

// ErrActive is returned by Persistent.Start when the previous activation
// of the operation has not completed yet.
var ErrActive = errors.New("coll: previous activation still in progress")

// Request is a handle on an in-flight collective schedule. It completes
// exactly once, with the algorithm's result (shape depends on the
// collective) or an error; Wait, Test and WaitCtx may be called from any
// goroutine, concurrently. Requests handed out by the nonblocking entry
// points always carry their channels; schedules run inline keep them
// nil and never escape.
type Request struct {
	done     chan struct{}
	cancelCh chan struct{}
	cancel   sync.Once

	// s is the schedule this request completes; cancellation pokes it so
	// a parked schedule wakes up and observes the cancel.
	s *sched

	// Written by the schedule runner before done is closed.
	res any
	err error
}

// Wait blocks until the collective completes on this member and returns
// its result.
func (r *Request) Wait() (any, error) {
	<-r.done
	return r.res, r.err
}

// Test reports whether the collective has completed, returning the
// result if so.
func (r *Request) Test() (any, bool, error) {
	select {
	case <-r.done:
		return r.res, true, r.err
	default:
		return nil, false, nil
	}
}

// WaitCtx blocks until the collective completes or ctx is done. When ctx
// fires first the schedule is cancelled at its next cancellation point —
// every send/receive wait inside the algorithm is one — and WaitCtx
// returns ctx's error promptly, even when a peer never shows up.
//
// Cancellation abandons this member's participation in the collective
// instance: sends already posted stay with the engine (peers that
// progressed past them are unaffected), unposted rounds never run. Later
// collectives on the same communicator are isolated from the abandoned
// instance by its per-instance tag, but the MPI ordering rule still
// stands: every member must eventually make the same collective call,
// cancelled or not, or the members' schedules stop lining up.
//
// One caveat bounds the recovery guarantee: the abandoned member posts
// no further receives for the instance, so a payload above the eager
// limit still owed to it leaves the late sender's rendezvous — and with
// it that rank's matching (blocking) call — stalled forever. Ranks that
// mix cancellation into a communicator should use the cancellable *Ctx
// forms on every member, or keep cancellable collectives' payloads
// within the eager limit.
func (r *Request) WaitCtx(ctx context.Context) (any, error) {
	select {
	case <-r.done:
		return r.res, r.err
	default:
	}
	select {
	case <-r.done:
		return r.res, r.err
	case <-ctx.Done():
		r.cancel.Do(func() {
			close(r.cancelCh)
			if r.s != nil {
				r.s.cancelGated()
			}
		})
		<-r.done
		switch {
		case r.err == nil:
			// The schedule won the race and completed normally.
			return r.res, nil
		case errors.Is(r.err, ErrCancelled):
			return nil, ctx.Err()
		default:
			// A genuine schedule failure raced the deadline; do not
			// mask it as a clean timeout.
			return nil, r.err
		}
	}
}

// fut is the seam between a step that posts a nonblocking operation and
// the later step that consumes it: the posting step fills req, the
// consuming step is gated on its completion and empties it again (so a
// persistent schedule can refill it on the next activation).
type fut struct {
	req *core.Request
}

// step is one unit of a collective schedule. run posts nonblocking
// operations and folds received data into the algorithm's state; a step
// with a gate does not run until the gated operation has completed, so
// run never blocks on message arrival — the executor parks the whole
// schedule instead.
type step struct {
	gate *fut
	run  func() error
}

// sched is one collective operation's schedule: the ordered steps the
// algorithm compiled into, the progress state they share, and the sends
// still in flight. A schedule is built synchronously inside the
// collective call (so tag allocation happens in program order on every
// member) and then executed either inline (blocking entry points) or on
// the shared progress pool (nonblocking and persistent entry points),
// parking — not blocking a worker — whenever it waits for a message.
type sched struct {
	c      *Comm
	inst   uint32 // this collective instance's sequence number
	req    *Request
	steps  []step
	resets []func()        // per-activation state initializers, run by arm
	pc     int             // index of the next step to run
	pend   []*core.Request // outstanding isends, drained at the end
	res    any             // published to req on successful completion

	// Parking state. While the schedule is parked on the pool, gated
	// holds the incomplete operations it waits for (guarded by gmu, so a
	// cancelling goroutine can poke them without racing the executor)
	// and waits counts the completions still owed before the schedule
	// becomes runnable again.
	gmu   sync.Mutex
	gated []*core.Request
	waits atomic.Int32
	wake  func() // bound once; decrements waits, enqueues at zero

	// t0 is the activation's arm time, feeding the "coll.sched_ns"
	// timing variable on finish.
	t0 time.Time
}

// newSched builds an empty schedule and mints its instance number —
// unconditionally, before any validation, so the sequence advances by
// exactly one per collective call on every member regardless of local
// outcomes. The request's channels stay nil until start(): the blocking
// entry points run inline, never select on them, and a nil cancelCh
// behaves like "never cancelled" in both cancellation points — so a
// blocking collective pays no channel allocations.
func (c *Comm) newSched() *sched {
	s := &sched{c: c, inst: c.seq.Add(1) - 1}
	s.req = &Request{s: s}
	s.wake = func() {
		// Runs under the engine lock (completion callback); counter
		// bump and trace record are single atomic operations.
		if s.waits.Add(-1) == 0 {
			s.c.vars().resumed.Inc()
			s.c.P.Recorder().Instant(obs.EvCollResume, s.inst, int64(sharedPool.busy.Load()))
			sharedPool.enqueue(s)
		}
	}
	return s
}

// tag mints the matching tag for one family within this instance.
// Composed schedules (reduce-scatter, ordered allreduce) use several
// families under one instance number; no composition uses a family
// twice, so tags stay unique within the instance.
func (s *sched) tag(family int) int {
	return int(s.inst%seqPeriod)<<tagFamBits | family
}

func (s *sched) step(fn func() error) { s.steps = append(s.steps, step{run: fn}) }

// onReset registers a per-activation state initializer. Builders route
// every piece of mutable algorithm state they would otherwise initialize
// at build time through a reset, which makes the schedule re-runnable:
// one-shot schedules arm once, persistent ones re-arm on every Start.
func (s *sched) onReset(fn func()) { s.resets = append(s.resets, fn) }

// arm runs the registered resets, initializing the activation's state.
// Every activation passes through here exactly once — one-shot or
// persistent, inline or pooled — so it is also where the activation's
// span opens.
func (s *sched) arm() {
	for _, fn := range s.resets {
		fn()
	}
	s.c.vars().started.Inc()
	s.t0 = time.Now()
	s.c.P.Recorder().Begin(obs.EvCollSched, s.inst, 0)
}

// rearm prepares a fresh activation of an already-run schedule: a new
// request (the old one stays valid for its completed activation), the
// program counter back at the top, and re-initialized algorithm state.
// The instance number — and with it every matching tag — is reused:
// persistent activations are aligned across members by the rule that
// each member completes activation k before starting k+1, so round k+1
// traffic can never cross-match round k's.
func (s *sched) rearm() {
	s.req = &Request{s: s, done: make(chan struct{}), cancelCh: make(chan struct{})}
	s.pc = 0
	s.pend = nil
	s.res = nil
	s.arm()
}

// publish appends the final step that snapshots the algorithm's result.
func (s *sched) publish(get func() any) {
	s.step(func() error { s.res = get(); return nil })
}

// recvStep appends a post step and a gated consume step: the receive is
// posted nonblockingly, and fn runs — with the payload, ownership
// transferred out of the engine — only once it has completed, without
// ever blocking an executor.
func (s *sched) recvStep(src, tag int, fn func([]byte) error) {
	f := &fut{}
	s.steps = append(s.steps, step{run: func() error {
		f.req = s.c.P.Irecv(s.c.Ctx, int32(src), int32(tag))
		return nil
	}})
	s.steps = append(s.steps, step{gate: f, run: func() error {
		b, err := s.takeRecv(f)
		if err != nil {
			return err
		}
		return fn(b)
	}})
}

// exchStep appends a concurrent exchange with two (possibly distinct)
// partners, the building block of the symmetric algorithms: one step
// posts the send (payload computed at post time by out) and the
// receive, a gated step consumes the received payload. The send's
// completion is left to the drain.
func (s *sched) exchStep(dst, src, tag int, out func() ([]byte, error), fn func([]byte) error) {
	f := &fut{}
	s.steps = append(s.steps, step{run: func() error {
		b, err := out()
		if err != nil {
			return err
		}
		if err := s.isend(dst, tag, b); err != nil {
			return err
		}
		f.req = s.c.P.Irecv(s.c.Ctx, int32(src), int32(tag))
		return nil
	}})
	s.steps = append(s.steps, step{gate: f, run: func() error {
		b, err := s.takeRecv(f)
		if err != nil {
			return err
		}
		return fn(b)
	}})
}

// takeRecv consumes a completed gated receive: surfaces its completion
// error, transfers the payload out of the engine, and recycles the
// request (emptying the future for the next activation).
func (s *sched) takeRecv(f *fut) ([]byte, error) {
	req := f.req
	f.req = nil
	st := &req.Stat
	if st.Cancelled {
		req.Recycle()
		return nil, errors.New("coll: receive cancelled")
	}
	if rerr := st.Err; rerr != nil {
		// A peer died or the communicator was revoked mid-schedule:
		// surface it rather than fold a nil payload into the algorithm.
		req.Recycle()
		return nil, rerr
	}
	// Payload lifetime is unbounded here (algorithms forward and stash
	// blocks), so take it out of the request before recycling.
	b := req.TakePayload()
	req.Recycle()
	return b, nil
}

// start launches the schedule on the shared progress pool and returns
// the request (the nonblocking entry points). The completion and
// cancellation channels are created here, before the schedule is
// enqueued, so every escaping request has them.
func (s *sched) start() *Request {
	s.req.done = make(chan struct{})
	s.req.cancelCh = make(chan struct{})
	s.arm()
	sharedPool.enqueue(s)
	return s.req
}

// runInline executes the schedule to completion on the calling goroutine
// (the blocking entry points: same schedule, no pool handoff), blocking
// at each gate instead of parking. With the pool forced (GOMPI_COLL_POOL
// =force), blocking entry points run through the pool too, exercising
// the park/resume machinery under every collective test.
func (s *sched) runInline() (any, error) {
	if forcePool {
		s.req.done = make(chan struct{})
		s.req.cancelCh = make(chan struct{})
		s.arm()
		sharedPool.enqueue(s)
		return s.req.Wait()
	}
	s.arm()
	for s.pc < len(s.steps) {
		if s.cancelled() {
			s.fail(ErrCancelled)
			return nil, s.req.err
		}
		st := s.steps[s.pc]
		if st.gate != nil && st.gate.req != nil {
			if err := s.await(st.gate.req); err != nil {
				s.fail(err)
				return nil, s.req.err
			}
		}
		if err := st.run(); err != nil {
			s.fail(err)
			return nil, s.req.err
		}
		s.pc++
	}
	if err := s.drainInline(); err != nil {
		s.fail(err)
		return nil, s.req.err
	}
	s.finish(nil)
	return s.req.res, s.req.err
}

// run executes the schedule on a pool worker until it completes or
// parks. A parked schedule is re-enqueued by the completion callback of
// the last operation it gates on; run then resumes at the same program
// counter.
func (s *sched) run() {
	// The previous park's gate list is stale the moment we are running
	// again; clear it before any gated request can be consumed, so a
	// concurrent canceller never pokes a recycled request.
	s.gmu.Lock()
	s.gated = nil
	s.gmu.Unlock()
	for {
		if s.cancelled() {
			s.fail(ErrCancelled)
			return
		}
		if s.pc < len(s.steps) {
			st := s.steps[s.pc]
			if st.gate != nil && st.gate.req != nil {
				if _, done := st.gate.req.Test(); !done {
					if s.park(st.gate.req) {
						return
					}
				}
			}
			if err := st.run(); err != nil {
				s.fail(err)
				return
			}
			s.pc++
			continue
		}
		// Steps exhausted: drain the outstanding sends.
		var waitFor []*core.Request
		for _, r := range s.pend {
			if _, done := r.Test(); !done {
				waitFor = append(waitFor, r)
			}
		}
		if len(waitFor) > 0 {
			if s.park(waitFor...) {
				return
			}
			continue // completed while parking; re-check from the top
		}
		var err error
		for _, r := range s.pend {
			if err == nil && r.Stat.Err != nil {
				err = r.Stat.Err // send failed (peer loss, revocation)
			}
			r.Recycle()
		}
		s.pend = nil
		if err != nil {
			s.fail(err)
			return
		}
		s.finish(nil)
		return
	}
}

// park suspends the schedule until every request in reqs has completed.
// It returns true when the schedule is genuinely parked — the executor
// must return, and the last completion callback re-enqueues the
// schedule — or false when everything completed while parking, in which
// case the executor just continues. The +1 guard below makes the
// resume decision race-free: the callbacks and the final Add together
// reach zero exactly once, wherever the completions land.
func (s *sched) park(reqs ...*core.Request) bool {
	s.gmu.Lock()
	s.gated = reqs
	s.gmu.Unlock()
	s.waits.Store(int32(len(reqs)) + 1)
	for _, r := range reqs {
		r.OnDone(s.wake)
	}
	if s.cancelled() {
		// The cancel may have arrived before gated was published; poke
		// the gated operations ourselves so the park is bounded.
		s.cancelGated()
	}
	if s.waits.Add(-1) == 0 {
		s.gmu.Lock()
		s.gated = nil
		s.gmu.Unlock()
		return false
	}
	s.c.vars().parked.Inc()
	s.c.P.Recorder().Instant(obs.EvCollPark, s.inst, int64(len(reqs)))
	return true
}

// cancelGated pokes a parked schedule's gated operations: still-
// revocable ones complete as cancelled immediately; matched ones are
// left to their imminent ordinary completion. Either way each gated
// request's completion callback still fires, so the schedule wakes,
// observes the cancellation and aborts. Holding gmu across the Cancel
// calls pins the gate list: the executor clears it (under gmu) before
// recycling any gated request, so a concurrent resume cannot recycle a
// request out from under us.
func (s *sched) cancelGated() {
	s.gmu.Lock()
	for _, r := range s.gated {
		s.c.P.Cancel(r)
	}
	s.gmu.Unlock()
}

func (s *sched) cancelled() bool {
	select {
	case <-s.req.cancelCh:
		return true
	default:
		return false
	}
}

// finish completes the activation's request.
func (s *sched) finish(err error) {
	if !s.t0.IsZero() {
		// t0 is zero when a schedule fails before arming (argument
		// validation); only armed activations count toward the timing.
		s.c.vars().schedNs.Observe(time.Since(s.t0))
		s.c.P.Recorder().End(obs.EvCollSched, s.inst, 0)
	}
	if err == nil {
		s.req.res = s.res
	}
	s.req.err = err
	if s.req.done != nil {
		close(s.req.done)
	}
}

// fail tears the schedule down after an error or cancellation and
// completes the request with err.
func (s *sched) fail(err error) {
	s.abortGate()
	s.abort()
	s.finish(err)
}

// abortGate disposes of the current step's gated receive, if any: a
// completed one is recycled, an in-flight one is cancelled when the
// engine still can (and otherwise left to complete in the background,
// reclaimed by the garbage collector).
func (s *sched) abortGate() {
	if s.pc >= len(s.steps) {
		return
	}
	f := s.steps[s.pc].gate
	if f == nil || f.req == nil {
		return
	}
	r := f.req
	f.req = nil
	if s.c.P.Cancel(r) {
		r.Recycle()
		return
	}
	if _, done := r.Test(); done {
		r.Recycle()
	}
}

// await blocks until r completes or the schedule is cancelled — the
// inline executor's cancellation point. On cancellation it revokes r
// when the engine still can (an unmatched receive); an operation past
// that point is consumed so the engine's bookkeeping stays balanced,
// but the wait still reports cancellation: the schedule is being torn
// down.
func (s *sched) await(r *core.Request) error {
	if _, done := r.Test(); done {
		return nil
	}
	if s.req.cancelCh == nil {
		r.Wait()
		return nil
	}
	done := r.Done()
	select {
	case <-done:
		return nil
	case <-s.req.cancelCh:
	}
	if !s.c.P.Cancel(r) {
		<-done
	}
	return ErrCancelled
}

// isend posts a standard-mode send on the schedule's context and tracks
// it for the completion drain. Collective payloads never carry the
// exclusive-ownership recycle promise: algorithms fan one buffer out to
// several destinations and forward received payloads.
func (s *sched) isend(dst, tag int, b []byte) error {
	req, err := s.c.P.Isend(s.c.Ctx, s.c.Rank, s.c.World(dst), tag, b, core.ModeStandard, false)
	if err != nil {
		return err
	}
	s.pend = append(s.pend, req)
	return nil
}

// drainInline waits (cancellably) for the schedule's outstanding sends
// and recycles their requests (the inline executor's drain; the pooled
// executor parks on them instead).
func (s *sched) drainInline() error {
	for i, r := range s.pend {
		err := s.await(r)
		if err == nil && r.Stat.Err != nil {
			err = r.Stat.Err // send completed with a failure (peer loss, revocation)
		}
		if err != nil {
			r.Recycle()
			s.pend = s.pend[i+1:]
			return err
		}
		r.Recycle()
	}
	s.pend = nil
	return nil
}

// abort tears down the outstanding sends after an error or
// cancellation: still-revocable sends (ungranted rendezvous) are
// cancelled and recycled; sends already with the engine are left to
// complete in the background (eager sends already have).
func (s *sched) abort() {
	for _, r := range s.pend {
		if s.c.P.Cancel(r) {
			r.Recycle()
			continue
		}
		if _, done := r.Test(); done {
			r.Recycle()
		}
		// Else: in flight; the engine completes it later and the
		// request is reclaimed by the garbage collector.
	}
	s.pend = nil
}
