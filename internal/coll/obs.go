package coll

import (
	"sync"

	"gompi/internal/obs"
)

// commObs caches the collective layer's performance-variable handles so
// the schedule executor touches atomics, not the registry's map+mutex.
// The counters live in the rank's registry under "coll.*" — every
// communicator of a rank shares them — and the zero value is usable, so
// Comm remains constructible by struct literal.
type commObs struct {
	once    sync.Once
	started *obs.Counter // schedule activations armed
	parked  *obs.Counter // times a schedule gave its worker back
	resumed *obs.Counter // times a parked schedule was re-enqueued
	schedNs *obs.Timing  // activation wall time, arm to finish
}

// Warm forces the lazy registration of the collective layer's
// performance and control variables, so enumeration is complete before
// any collective has run.
func (c *Comm) Warm() { c.vars() }

// vars resolves (once) this communicator's handles in the rank's
// registry and registers the pool-cap control variable.
func (c *Comm) vars() *commObs {
	c.obs.once.Do(func() {
		reg := c.P.Obs()
		c.obs.started = reg.Counter("coll.scheds_started")
		c.obs.parked = reg.Counter("coll.scheds_parked")
		c.obs.resumed = reg.Counter("coll.scheds_resumed")
		c.obs.schedNs = reg.Timing("coll.sched_ns")
		// The pool is process-wide; each rank's registry gets a cvar
		// handle onto the one shared cap.
		reg.RegisterControl(obs.Control{
			Name: "coll.pool_max_workers",
			Desc: "shared progress pool worker cap (process-wide)",
			Get:  func() int64 { return int64(MaxPoolWorkers()) },
			Set: func(v int64) error {
				SetMaxPoolWorkers(int(v))
				return nil
			},
		})
	})
	return &c.obs
}
