package coll

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"gompi/internal/core"
	"gompi/internal/transport"
)

// runGroup executes fn concurrently on n fresh ranks and returns
// per-rank results.
func runGroup(t *testing.T, n int, fn func(c *Comm) (any, error)) []any {
	t.Helper()
	devs := transport.NewShmJob(n, 0)
	procs := make([]*core.Proc, n)
	for i, d := range devs {
		procs[i] = core.NewProc(d, core.Config{EagerLimit: 256})
	}
	defer func() {
		for _, p := range procs {
			p.Close()
		}
	}()
	results := make([]any, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			group := make([]int, n)
			for j := range group {
				group[j] = j
			}
			c := &Comm{
				P:     procs[rank],
				Ctx:   1,
				Rank:  rank,
				Size:  n,
				World: func(gr int) int { return group[gr] },
			}
			results[rank], errs[rank] = fn(c)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
	return results
}

func TestBarrierAllSizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7} {
		runGroup(t, n, func(c *Comm) (any, error) {
			for i := 0; i < 3; i++ {
				if err := c.Barrier(); err != nil {
					return nil, err
				}
			}
			return nil, nil
		})
	}
}

func TestBcastAllRootsAllSizes(t *testing.T) {
	for _, n := range []int{1, 2, 4, 5} {
		for root := 0; root < n; root++ {
			root := root
			results := runGroup(t, n, func(c *Comm) (any, error) {
				var data []byte
				if c.Rank == root {
					data = []byte(fmt.Sprintf("from-%d", root))
				}
				return c.Bcast(root, data)
			})
			want := fmt.Sprintf("from-%d", root)
			for r, res := range results {
				if string(res.([]byte)) != want {
					t.Fatalf("n=%d root=%d rank=%d: got %q", n, root, r, res)
				}
			}
		}
	}
}

func TestGatherScatterInverse(t *testing.T) {
	for _, n := range []int{1, 2, 3, 6} {
		for root := 0; root < n; root += 2 {
			root := root
			results := runGroup(t, n, func(c *Comm) (any, error) {
				mine := []byte{byte(c.Rank), byte(c.Rank * 2)}
				blocks, err := c.Gather(root, mine)
				if err != nil {
					return nil, err
				}
				// Root scatters the same blocks back.
				back, err := c.Scatter(root, blocks)
				if err != nil {
					return nil, err
				}
				return back, nil
			})
			for r, res := range results {
				want := []byte{byte(r), byte(r * 2)}
				if !bytes.Equal(res.([]byte), want) {
					t.Fatalf("n=%d root=%d rank=%d: got %v", n, root, r, res)
				}
			}
		}
	}
}

func TestGatherVariableSizes(t *testing.T) {
	results := runGroup(t, 4, func(c *Comm) (any, error) {
		mine := bytes.Repeat([]byte{byte(c.Rank)}, c.Rank+1)
		return c.Gather(0, mine)
	})
	blocks := results[0].([][]byte)
	for r, b := range blocks {
		if len(b) != r+1 {
			t.Fatalf("rank %d block: %v", r, b)
		}
	}
	for r := 1; r < 4; r++ {
		if results[r] != nil && results[r].([][]byte) != nil {
			t.Fatalf("non-root rank %d received blocks", r)
		}
	}
}

func TestAllgatherEveryoneSeesAll(t *testing.T) {
	for _, n := range []int{1, 2, 5} {
		results := runGroup(t, n, func(c *Comm) (any, error) {
			return c.Allgather([]byte{byte(c.Rank + 1)})
		})
		for r, res := range results {
			blocks := res.([][]byte)
			for j, b := range blocks {
				if len(b) != 1 || b[0] != byte(j+1) {
					t.Fatalf("n=%d rank=%d slot %d: %v", n, r, j, b)
				}
			}
		}
	}
}

func TestAlltoallTransposition(t *testing.T) {
	const n = 4
	results := runGroup(t, n, func(c *Comm) (any, error) {
		parts := make([][]byte, n)
		for j := range parts {
			parts[j] = []byte{byte(c.Rank*10 + j)}
		}
		return c.Alltoall(parts)
	})
	for r, res := range results {
		got := res.([][]byte)
		for j := range got {
			if got[j][0] != byte(j*10+r) {
				t.Fatalf("rank %d slot %d: got %d", r, j, got[j][0])
			}
		}
	}
}

func TestReduceSumMatchesReference(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 8} {
		results := runGroup(t, n, func(c *Comm) (any, error) {
			mine := []int32{int32(c.Rank + 1), int32(c.Rank * c.Rank)}
			return c.Reduce(0, mine, Sum)
		})
		var w0, w1 int32
		for r := 0; r < n; r++ {
			w0 += int32(r + 1)
			w1 += int32(r * r)
		}
		got := results[0].([]int32)
		if got[0] != w0 || got[1] != w1 {
			t.Fatalf("n=%d: got %v, want [%d %d]", n, got, w0, w1)
		}
	}
}

func TestAllreduceMatchesReferenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		vals := make([][]float64, n)
		for r := range vals {
			vals[r] = []float64{float64(rng.Intn(100)) - 50, float64(rng.Intn(100))}
		}
		results := runGroup(t, n, func(c *Comm) (any, error) {
			return c.Allreduce(append([]float64(nil), vals[c.Rank]...), Sum)
		})
		want := []float64{0, 0}
		for _, v := range vals {
			want[0] += v[0]
			want[1] += v[1]
		}
		for _, res := range results {
			if !reflect.DeepEqual(res, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestNonCommutativeOpReducesInRankOrder(t *testing.T) {
	// Matrix-multiply-like op: string concatenation encoded as bytes is
	// simplest, but ops work on numeric slices — use a "first wins
	// digit append": inout = in*10 + inout, which is order-sensitive.
	appendOp := NewOp("append", false, func(in, inout any) error {
		a := in.([]int64)
		b := inout.([]int64)
		for i := range b {
			b[i] = a[i]*10 + b[i]
		}
		return nil
	})
	for _, n := range []int{2, 3, 5} {
		results := runGroup(t, n, func(c *Comm) (any, error) {
			return c.Allreduce([]int64{int64(c.Rank + 1)}, appendOp)
		})
		var want int64
		for r := 0; r < n; r++ {
			want = want*10 + int64(r+1)
		}
		for rank, res := range results {
			if got := res.([]int64)[0]; got != want {
				t.Fatalf("n=%d rank %d: got %d, want %d (rank-order violated)", n, rank, got, want)
			}
		}
	}
}

func TestScanPrefix(t *testing.T) {
	const n = 5
	results := runGroup(t, n, func(c *Comm) (any, error) {
		return c.Scan([]int32{int32(c.Rank + 1)}, Sum)
	})
	for r, res := range results {
		want := int32((r + 1) * (r + 2) / 2)
		if got := res.([]int32)[0]; got != want {
			t.Fatalf("rank %d: scan %d, want %d", r, got, want)
		}
	}
}

func TestReduceScatterSegments(t *testing.T) {
	const n = 3
	counts := []int{1, 2, 3}
	results := runGroup(t, n, func(c *Comm) (any, error) {
		mine := []int32{1, 2, 3, 4, 5, 6} // same on every rank
		return c.ReduceScatter(mine, counts, Sum)
	})
	at := 0
	for r, res := range results {
		got := res.([]int32)
		if len(got) != counts[r] {
			t.Fatalf("rank %d: %d elements, want %d", r, len(got), counts[r])
		}
		for i := range got {
			want := int32((at + i + 1) * n)
			if got[i] != want {
				t.Fatalf("rank %d elem %d: got %d, want %d", r, i, got[i], want)
			}
		}
		at += counts[r]
	}
}

func TestMaxLocMinLoc(t *testing.T) {
	const n = 4
	results := runGroup(t, n, func(c *Comm) (any, error) {
		// Pair (value, index): value peaks at rank 2.
		v := float64(10 - (c.Rank-2)*(c.Rank-2))
		return c.Allreduce([]float64{v, float64(c.Rank)}, MaxLoc)
	})
	for r, res := range results {
		got := res.([]float64)
		if got[0] != 10 || got[1] != 2 {
			t.Fatalf("rank %d: maxloc %v, want [10 2]", r, got)
		}
	}
	// Tie: MPI picks the minimum index.
	results = runGroup(t, n, func(c *Comm) (any, error) {
		return c.Allreduce([]int32{7, int32(c.Rank)}, MaxLoc)
	})
	for r, res := range results {
		got := res.([]int32)
		if got[0] != 7 || got[1] != 0 {
			t.Fatalf("rank %d: tie maxloc %v, want [7 0]", r, got)
		}
	}
	results = runGroup(t, n, func(c *Comm) (any, error) {
		return c.Allreduce([]int32{int32(c.Rank + 5), int32(c.Rank)}, MinLoc)
	})
	for r, res := range results {
		got := res.([]int32)
		if got[0] != 5 || got[1] != 0 {
			t.Fatalf("rank %d: minloc %v", r, got)
		}
	}
}

func TestLogicalAndBitwiseOps(t *testing.T) {
	const n = 3
	results := runGroup(t, n, func(c *Comm) (any, error) {
		return c.Allreduce([]bool{true, c.Rank != 1, false}, Land)
	})
	for _, res := range results {
		got := res.([]bool)
		if got[0] != true || got[1] != false || got[2] != false {
			t.Fatalf("land: %v", got)
		}
	}
	results = runGroup(t, n, func(c *Comm) (any, error) {
		return c.Allreduce([]int32{int32(1 << c.Rank)}, Bor)
	})
	for _, res := range results {
		if got := res.([]int32)[0]; got != 7 {
			t.Fatalf("bor: %d, want 7", got)
		}
	}
	results = runGroup(t, n, func(c *Comm) (any, error) {
		return c.Allreduce([]int64{int64(c.Rank)}, Bxor)
	})
	for _, res := range results {
		if got := res.([]int64)[0]; got != 0^1^2 {
			t.Fatalf("bxor: %d", got)
		}
	}
}

func TestOpClassErrors(t *testing.T) {
	if err := Band.Apply([]float64{1}, []float64{2}); err == nil {
		t.Fatal("bitwise op on floats must error")
	}
	if err := Sum.Apply([]bool{true}, []bool{false}); err == nil {
		t.Fatal("sum on booleans must error")
	}
}

func TestAgreeContextBase(t *testing.T) {
	const n = 4
	results := runGroup(t, n, func(c *Comm) (any, error) {
		b1, err := c.AgreeContextBase()
		if err != nil {
			return nil, err
		}
		b2, err := c.AgreeContextBase()
		if err != nil {
			return nil, err
		}
		return []int32{b1, b2}, nil
	})
	first := results[0].([]int32)
	if first[1] != first[0]+2 {
		t.Fatalf("second base %d, want %d", first[1], first[0]+2)
	}
	for r, res := range results {
		got := res.([]int32)
		if got[0] != first[0] || got[1] != first[1] {
			t.Fatalf("rank %d disagrees: %v vs %v", r, got, first)
		}
	}
}

func TestBundleRoundTrip(t *testing.T) {
	in := map[int][]byte{0: []byte("a"), 3: []byte("bcd"), 7: nil}
	enc := encodeBundle(in)
	out := make(map[int][]byte)
	if err := decodeBundle(enc, out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || string(out[3]) != "bcd" || len(out[7]) != 0 {
		t.Fatalf("bundle roundtrip: %v", out)
	}
	if err := decodeBundle([]byte{1}, out); err == nil {
		t.Fatal("short bundle must error")
	}
}
