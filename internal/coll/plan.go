package coll

import "fmt"

// Plan composes a custom collective schedule from the engine's
// primitives: local compute steps interleaved with collective exchange
// rounds, all running as one schedule instance — so the composition
// inherits the engine's nonblocking Start form, cancellation points and
// per-instance tag isolation for free. The parallel I/O layer builds
// its two-phase collective reads and writes this way.
//
// Like every collective, a Plan must be constructed synchronously and
// in the same program order on every member of the communicator (the
// instance number is minted at NewPlan), and every member must add the
// same sequence of exchange primitives. Each primitive draws its own
// reserved tag family, so one Plan may use the same primitive several
// times (e.g. the request and data alltoalls of a two-phase read)
// without its rounds cross-matching.
type Plan struct {
	c   *Comm
	s   *sched
	fam int
}

// NewPlan starts an empty composed schedule, minting its collective
// instance number. Callers that abort between NewPlan and Run/Start
// leave the instance consumed, exactly like an aborted collective —
// peers whose matching call proceeded stay tag-aligned.
func (c *Comm) NewPlan() *Plan {
	return &Plan{c: c, s: c.newSched(), fam: tagPlan0}
}

// nextFam allocates the next reserved tag family for one exchange
// primitive. The family space is bounded by the tag layout; a plan
// that exhausts it is a builder bug, not a runtime condition.
func (p *Plan) nextFam() int {
	f := p.fam
	if f >= 1<<tagFamBits {
		panic(fmt.Sprintf("coll: plan exceeds %d exchange primitives", (1<<tagFamBits)-tagPlan0))
	}
	p.fam++
	return f
}

// Step appends a local compute step. Steps run in order on the
// schedule's executor (the caller for Run, the runner goroutine for
// Start); an error aborts the schedule.
func (p *Plan) Step(fn func() error) { p.s.step(fn) }

// Alltoall appends a pairwise exchange round: parts[j] reaches member
// j, and *out holds the blocks received from every member once the
// round's steps have run. Block sizes may vary. parts must be pre-sized
// to the communicator size, but its contents are read lazily — an
// earlier Step of the same plan may fill them.
func (p *Plan) Alltoall(parts [][]byte, out *[][]byte) error {
	if len(parts) != p.c.Size {
		return fmt.Errorf("coll: plan alltoall with %d parts for %d ranks", len(parts), p.c.Size)
	}
	p.c.addAlltoallStepsFam(p.s, p.nextFam(), parts, out)
	return nil
}

// Allgather appends a ring allgather round of this member's block; *out
// holds every member's block once the round's steps have run.
func (p *Plan) Allgather(mine []byte, out *[][]byte) {
	in := mine
	p.c.addAllgatherStepsFam(p.s, p.nextFam(), &in, out)
}

// Publish appends the final step that snapshots the schedule's result:
// what Run returns and what a started Request completes with.
func (p *Plan) Publish(get func() any) { p.s.publish(get) }

// Run executes the composed schedule inline to completion on the
// calling goroutine (the blocking form).
func (p *Plan) Run() (any, error) { return p.s.runInline() }

// Start launches the composed schedule on its own progress goroutine
// and returns its request (the nonblocking form), with cancellation
// points at every exchange wait.
func (p *Plan) Start() *Request { return p.s.start() }
