package coll

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"gompi/internal/core"
	"gompi/internal/transport"
)

// runGroupCtx executes fn concurrently on n fresh ranks, handing each a
// builder for communicators over successive collective contexts (the
// same context id on every rank), and returns per-rank results.
func runGroupCtx(t *testing.T, n int, fn func(mk func(ctx int32) *Comm) (any, error)) []any {
	t.Helper()
	devs := transport.NewShmJob(n, 0)
	procs := make([]*core.Proc, n)
	for i, d := range devs {
		procs[i] = core.NewProc(d, core.Config{EagerLimit: 256})
	}
	defer func() {
		for _, p := range procs {
			p.Close()
		}
	}()
	results := make([]any, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			comms := make(map[int32]*Comm)
			mk := func(ctx int32) *Comm {
				if c, ok := comms[ctx]; ok {
					return c
				}
				c := &Comm{
					P:     procs[rank],
					Ctx:   ctx,
					Rank:  rank,
					Size:  n,
					World: func(gr int) int { return gr },
				}
				comms[ctx] = c
				return c
			}
			results[rank], errs[rank] = fn(mk)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
	return results
}

// TestOverlappingIbcastsSameFamily: two broadcasts of the same family in
// flight at once, waited in reverse start order — the per-instance
// sequence tags must keep their traffic apart.
func TestOverlappingIbcastsSameFamily(t *testing.T) {
	for _, n := range []int{2, 3, 5} {
		results := runGroupCtx(t, n, func(mk func(int32) *Comm) (any, error) {
			c := mk(1)
			var d1, d2 []byte
			if c.Rank == 0 {
				d1 = []byte("first")
				d2 = []byte("second")
			}
			r1, err := c.Ibcast(0, d1)
			if err != nil {
				return nil, err
			}
			r2, err := c.Ibcast(0, d2)
			if err != nil {
				return nil, err
			}
			// Reverse order: the second instance must complete without
			// stealing the first instance's payloads.
			got2, err := r2.Wait()
			if err != nil {
				return nil, err
			}
			got1, err := r1.Wait()
			if err != nil {
				return nil, err
			}
			return [][]byte{got1.([]byte), got2.([]byte)}, nil
		})
		for r, res := range results {
			got := res.([][]byte)
			if !bytes.Equal(got[0], []byte("first")) || !bytes.Equal(got[1], []byte("second")) {
				t.Fatalf("n=%d rank %d: overlapped bcasts delivered %q/%q", n, r, got[0], got[1])
			}
		}
	}
}

// TestOverlappingMixedCollectives: a barrier, an allreduce, an allgather
// and both scans in flight simultaneously on one communicator.
func TestOverlappingMixedCollectives(t *testing.T) {
	const n = 4
	results := runGroupCtx(t, n, func(mk func(int32) *Comm) (any, error) {
		c := mk(1)
		rb := c.Ibarrier()
		rr := c.Iallreduce([]int32{int32(c.Rank + 1)}, Sum)
		rg := c.Iallgather([]byte{byte(c.Rank)})
		rs := c.Iscan([]int32{int32(c.Rank + 1)}, Sum)
		rx := c.Iexscan([]int32{int32(c.Rank + 1)}, Sum)
		if _, err := rb.Wait(); err != nil {
			return nil, err
		}
		sum, err := rr.Wait()
		if err != nil {
			return nil, err
		}
		blocks, err := rg.Wait()
		if err != nil {
			return nil, err
		}
		scan, err := rs.Wait()
		if err != nil {
			return nil, err
		}
		exscan, err := rx.Wait()
		if err != nil {
			return nil, err
		}
		return []any{sum, blocks, scan, exscan}, nil
	})
	wantSum := int32(n * (n + 1) / 2)
	for r, res := range results {
		vals := res.([]any)
		if got := vals[0].([]int32)[0]; got != wantSum {
			t.Fatalf("rank %d: allreduce %d, want %d", r, got, wantSum)
		}
		blocks := vals[1].([][]byte)
		for j, b := range blocks {
			if len(b) != 1 || b[0] != byte(j) {
				t.Fatalf("rank %d: allgather slot %d = %v", r, j, b)
			}
		}
		if got := vals[2].([]int32)[0]; got != int32((r+1)*(r+2)/2) {
			t.Fatalf("rank %d: scan %d", r, got)
		}
		if r == 0 {
			if vals[3] != nil {
				t.Fatalf("rank 0: exscan result %v, want nil", vals[3])
			}
		} else if got := vals[3].([]int32)[0]; got != int32(r*(r+1)/2) {
			t.Fatalf("rank %d: exscan %d", r, got)
		}
	}
}

// TestScanExscanBackToBackDistinctTags: a Scan and an Exscan overlapped
// in flight must never cross-match — the regression for Exscan sharing
// Scan's tag family.
func TestScanExscanBackToBackDistinctTags(t *testing.T) {
	const n = 4
	results := runGroupCtx(t, n, func(mk func(int32) *Comm) (any, error) {
		c := mk(1)
		rs := c.Iscan([]int64{int64(c.Rank + 1)}, Sum)
		rx := c.Iexscan([]int64{100 * int64(c.Rank+1)}, Sum)
		exscan, err := rx.Wait()
		if err != nil {
			return nil, err
		}
		scan, err := rs.Wait()
		if err != nil {
			return nil, err
		}
		return []any{scan, exscan}, nil
	})
	for r, res := range results {
		vals := res.([]any)
		if got := vals[0].([]int64)[0]; got != int64((r+1)*(r+2)/2) {
			t.Fatalf("rank %d: scan %d", r, got)
		}
		if r > 0 {
			if got := vals[1].([]int64)[0]; got != int64(100*r*(r+1)/2) {
				t.Fatalf("rank %d: exscan %d", r, got)
			}
		}
	}
}

// TestWaitCtxAbsentPeerBarrier: a barrier stalled on a member that never
// arrives must unblock promptly with the context's error, without
// deadlocking the rank or the engine; other communicators stay usable.
func TestWaitCtxAbsentPeerBarrier(t *testing.T) {
	const n = 2
	runGroupCtx(t, n, func(mk func(int32) *Comm) (any, error) {
		if mk(1).Rank == 0 {
			// Rank 1 never enters the barrier on context 3.
			stalled := mk(3)
			req := stalled.Ibarrier()
			ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
			defer cancel()
			start := time.Now()
			_, err := req.WaitCtx(ctx)
			if !errors.Is(err, context.DeadlineExceeded) {
				return nil, fmt.Errorf("WaitCtx on stalled barrier: %v, want deadline exceeded", err)
			}
			if waited := time.Since(start); waited > 5*time.Second {
				return nil, fmt.Errorf("WaitCtx took %v, not prompt", waited)
			}
		}
		// Both ranks: the engine and other communicators are unharmed.
		return nil, mk(1).Barrier()
	})
}

// TestWaitCtxCancelThenReuseSameComm: a non-root member cancels out of a
// broadcast whose root is late; the late root still completes its half,
// and the SAME communicator keeps working for both members afterwards —
// the per-instance tags keep the abandoned instance's traffic from ever
// matching later collectives.
func TestWaitCtxCancelThenReuseSameComm(t *testing.T) {
	const n = 2
	results := runGroupCtx(t, n, func(mk func(int32) *Comm) (any, error) {
		c := mk(1)
		if c.Rank == 1 {
			req, err := c.Ibcast(0, nil)
			if err != nil {
				return nil, err
			}
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
			defer cancel()
			if _, err := req.WaitCtx(ctx); !errors.Is(err, context.DeadlineExceeded) {
				return nil, fmt.Errorf("WaitCtx on rootless bcast: %v, want deadline exceeded", err)
			}
		} else {
			// The root arrives late — after rank 1 already abandoned the
			// instance — and completes its half without a receiver.
			time.Sleep(150 * time.Millisecond)
			if _, err := c.Bcast(0, []byte("late")); err != nil {
				return nil, err
			}
		}
		// The same communicator must still carry ordinary collectives.
		res, err := c.Allreduce([]int32{int32(c.Rank + 1)}, Sum)
		if err != nil {
			return nil, err
		}
		back, err := c.Bcast(0, []byte("again"))
		if err != nil {
			return nil, err
		}
		return []any{res, back}, nil
	})
	for r, res := range results {
		vals := res.([]any)
		if got := vals[0].([]int32)[0]; got != 3 {
			t.Fatalf("rank %d: allreduce after cancel %d, want 3", r, got)
		}
		if !bytes.Equal(vals[1].([]byte), []byte("again")) {
			t.Fatalf("rank %d: bcast after cancel %q", r, vals[1])
		}
	}
}

// TestRequestTestPolling: Test transitions false→true and returns the
// result exactly once completed.
func TestRequestTestPolling(t *testing.T) {
	const n = 3
	runGroupCtx(t, n, func(mk func(int32) *Comm) (any, error) {
		c := mk(1)
		req := c.Iallreduce([]int32{1}, Sum)
		for {
			res, done, err := req.Test()
			if err != nil {
				return nil, err
			}
			if done {
				if got := res.([]int32)[0]; got != n {
					return nil, fmt.Errorf("test result %d, want %d", got, n)
				}
				return nil, nil
			}
			time.Sleep(time.Millisecond)
		}
	})
}

// TestBlockingUnaffectedByCancelledNeighbour: cancellation on one
// communicator does not disturb in-flight collectives on another.
func TestBlockingUnaffectedByCancelledNeighbour(t *testing.T) {
	const n = 4
	results := runGroupCtx(t, n, func(mk func(int32) *Comm) (any, error) {
		main, side := mk(1), mk(3)
		if main.Rank == 0 {
			req := side.Ibarrier() // ranks 1..3 never enter; abandon it
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
			defer cancel()
			if _, err := req.WaitCtx(ctx); !errors.Is(err, context.DeadlineExceeded) {
				return nil, fmt.Errorf("side barrier: %v", err)
			}
		}
		return main.Allreduce([]float64{float64(main.Rank)}, Max)
	})
	for r, res := range results {
		if got := res.([]float64)[0]; got != float64(n-1) {
			t.Fatalf("rank %d: %v", r, got)
		}
	}
}
