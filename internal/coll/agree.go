package coll

import (
	"encoding/binary"
	"errors"

	"gompi/internal/core"
	"gompi/internal/transport"
)

// Agree is the fault-tolerant agreement under ULFM-style recovery
// (MPIX_Comm_agree): the one collective that must complete even while
// members are dying, because Shrink is built on it. Each member
// contributes a flags word (folded with bitwise AND), a candidate value
// (folded with MAX — Shrink feeds context-id candidates through it),
// and its view of which group ranks have failed (folded with OR); Agree
// returns the folds plus the merged failure view.
//
// The schedule is two rounds of all-to-all state exchange over the
// live members, with every message recovery-tagged so it flows even on
// a revoked communicator. A peer whose receive fails with a process
// loss is marked failed and routed around rather than aborting the
// round — the routing-around that makes the operation fault-tolerant.
// After round one every survivor knows the union of the inputs it could
// reach; round two spreads views that were updated mid-round. The
// result is uniform across survivors provided no additional member dies
// during the second round; a death that late is folded into the
// returned failure view, and callers following the ULFM usage loop
// (ack the newly observed failures, Agree again) reconverge on the next
// call.
//
// failed is the caller's current failure view, indexed by group rank
// (nil means no known failures); Agree does not mutate it. Like every
// collective, Agree must be called by all live members in the same
// program order.
func (c *Comm) Agree(flags uint32, cand int32, failed []bool) (uint32, int32, []bool, error) {
	view := make([]bool, c.Size)
	copy(view, failed)
	if c.Rank < len(view) {
		view[c.Rank] = false // self is alive by construction
	}

	for round := 0; round < 2; round++ {
		// Minted from the recovery sequence, not seq: survivors reach
		// Agree with seq misaligned (each abandoned its last data
		// collective at a different point), but execute the same
		// recovery calls in the same order.
		inst := c.rseq.Add(1) - 1
		tag := int(core.RecoveryTag) | int(inst%seqPeriod)<<tagFamBits | tagAgree

		state := encodeAgree(flags, cand, view)
		type pendRecv struct {
			r   int
			req *core.Request
		}
		var recvs []pendRecv
		var sends []*core.Request
		for r := 0; r < c.Size; r++ {
			if r == c.Rank || view[r] {
				continue
			}
			recvs = append(recvs, pendRecv{r, c.P.Irecv(c.Ctx, int32(r), int32(tag))})
		}
		for r := 0; r < c.Size; r++ {
			if r == c.Rank || view[r] {
				continue
			}
			req, err := c.P.Isend(c.Ctx, c.Rank, c.World(r), tag, state, core.ModeStandard, false)
			if err != nil {
				// The peer died between posting our receive and this
				// send; fold the loss, the receive fails on its own.
				var pl *transport.PeerLostError
				if !errors.As(err, &pl) {
					return 0, 0, nil, err
				}
			}
			sends = append(sends, req)
		}

		for _, pr := range recvs {
			// Copy the status error out before Recycle zeroes the
			// request that Wait's pointer aliases.
			rerr := pr.req.Wait().Err
			if rerr != nil {
				pr.req.Recycle()
				var pl *transport.PeerLostError
				if !errors.As(rerr, &pl) {
					// Not a peer death: the local endpoint itself is
					// gone (engine closed / fault-injected kill).
					return 0, 0, nil, rerr
				}
				view[pr.r] = true
				continue
			}
			pf, pc, pview, ok := decodeAgree(pr.req.Payload, c.Size)
			pr.req.Recycle()
			if !ok {
				continue // malformed: treat as absent, round 2 recovers
			}
			flags &= pf
			if pc > cand {
				cand = pc
			}
			for i, f := range pview {
				if f {
					view[i] = true
				}
			}
		}
		// Drain sends; a send that failed because its target died is
		// already reflected (or about to be) in the failure view.
		for _, sr := range sends {
			sr.Wait()
			sr.Recycle()
		}
	}
	return flags, cand, view, nil
}

// agreeWire is the fixed prefix of the agreement state: flags(4)
// cand(4), followed by the failure bitmap, one bit per group rank.
const agreeWire = 8

func encodeAgree(flags uint32, cand int32, view []bool) []byte {
	b := make([]byte, agreeWire+(len(view)+7)/8)
	binary.LittleEndian.PutUint32(b, flags)
	binary.LittleEndian.PutUint32(b[4:], uint32(cand))
	for i, f := range view {
		if f {
			b[agreeWire+i/8] |= 1 << (i % 8)
		}
	}
	return b
}

func decodeAgree(b []byte, size int) (flags uint32, cand int32, view []bool, ok bool) {
	if len(b) < agreeWire+(size+7)/8 {
		return 0, 0, nil, false
	}
	flags = binary.LittleEndian.Uint32(b)
	cand = int32(binary.LittleEndian.Uint32(b[4:]))
	view = make([]bool, size)
	for i := range view {
		view[i] = b[agreeWire+i/8]&(1<<(i%8)) != 0
	}
	return flags, cand, view, true
}
