package coll

import (
	"sync"
	"testing"

	"gompi/internal/core"
	"gompi/internal/transport"
)

// agreeGroup builds n ranks over a loopback TCP mesh (the device whose
// readLoop reports peer death) and runs fn on every rank not in dead,
// after closing the dead ranks' engines.
func agreeGroup(t *testing.T, n int, dead map[int]bool, fn func(c *Comm) (any, error)) map[int]any {
	t.Helper()
	devs, err := transport.NewLoopbackJob(n)
	if err != nil {
		t.Fatal(err)
	}
	procs := make([]*core.Proc, n)
	for i, d := range devs {
		procs[i] = core.NewProc(d, core.Config{EagerLimit: 256})
	}
	t.Cleanup(func() {
		for _, p := range procs {
			p.Close()
		}
	})
	for r := range dead {
		procs[r].Close()
	}
	results := make(map[int]any)
	errs := make(map[int]error)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		if dead[i] {
			continue
		}
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := &Comm{
				P:     procs[rank],
				Ctx:   1,
				Rank:  rank,
				Size:  n,
				World: func(gr int) int { return gr },
			}
			res, err := fn(c)
			mu.Lock()
			results[rank], errs[rank] = res, err
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return results
}

type agreeRes struct {
	flags uint32
	cand  int32
	view  []bool
}

func checkUniform(t *testing.T, results map[int]any) agreeRes {
	t.Helper()
	var first *agreeRes
	for r, raw := range results {
		got := raw.(agreeRes)
		if first == nil {
			g := got
			first = &g
			continue
		}
		if got.flags != first.flags || got.cand != first.cand {
			t.Fatalf("rank %d disagreed: %+v vs %+v", r, got, *first)
		}
		for i := range got.view {
			if got.view[i] != first.view[i] {
				t.Fatalf("rank %d failure view %v differs from %v", r, got.view, first.view)
			}
		}
	}
	return *first
}

// TestAgreeAllAlive: with every member participating, Agree is a plain
// AND/MAX allreduce with an empty failure view, uniform across ranks.
func TestAgreeAllAlive(t *testing.T) {
	const n = 5
	results := agreeGroup(t, n, nil, func(c *Comm) (any, error) {
		flags, cand, view, err := c.Agree(^uint32(1<<c.Rank), int32(c.Rank*10), nil)
		return agreeRes{flags, cand, view}, err
	})
	got := checkUniform(t, results)
	wantFlags := ^uint32(0)
	for r := 0; r < n; r++ {
		wantFlags &^= 1 << r
	}
	if got.flags != wantFlags || got.cand != (n-1)*10 {
		t.Fatalf("agreed (%#x, %d), want (%#x, %d)", got.flags, got.cand, wantFlags, (n-1)*10)
	}
	for i, f := range got.view {
		if f {
			t.Fatalf("rank %d reported failed with everyone alive", i)
		}
	}
}

// TestAgreeRoutesAroundDeath: a member dead before the call — and not
// yet known to any caller — must be discovered, folded into the failure
// view, and routed around; the survivors still agree uniformly.
func TestAgreeRoutesAroundDeath(t *testing.T) {
	const n, victim = 4, 2
	results := agreeGroup(t, n, map[int]bool{victim: true}, func(c *Comm) (any, error) {
		flags, cand, view, err := c.Agree(0xff, int32(c.Rank), nil)
		return agreeRes{flags, cand, view}, err
	})
	got := checkUniform(t, results)
	if !got.view[victim] {
		t.Fatalf("failure view %v missed the dead rank %d", got.view, victim)
	}
	for i, f := range got.view {
		if f && i != victim {
			t.Fatalf("live rank %d marked failed in %v", i, got.view)
		}
	}
	// The dead rank's candidate (2) may or may not fold in depending on
	// when it died — here it never sent, so the max is over survivors.
	if got.flags != 0xff || got.cand != n-1 {
		t.Fatalf("agreed (%#x, %d), want (0xff, %d)", got.flags, got.cand, n-1)
	}
}

// TestAgreePreAckedFailure: a failure the callers already acked is
// routed around without touching the dead rank, and the caller's view
// slice is not mutated.
func TestAgreePreAckedFailure(t *testing.T) {
	const n, victim = 4, 0
	results := agreeGroup(t, n, map[int]bool{victim: true}, func(c *Comm) (any, error) {
		mine := make([]bool, n)
		mine[victim] = true
		flags, cand, view, err := c.Agree(7, 1, mine)
		if err == nil {
			for i, f := range mine {
				if f != (i == victim) {
					t.Errorf("rank %d: caller view mutated: %v", c.Rank, mine)
					break
				}
			}
		}
		return agreeRes{flags, cand, view}, err
	})
	got := checkUniform(t, results)
	if !got.view[victim] || got.flags != 7 || got.cand != 1 {
		t.Fatalf("agreed %+v, want flags 7, cand 1, view with rank %d failed", got, victim)
	}
}

// TestAgreeBackToBack: repeated agreements on one communicator stay
// tag-isolated (distinct instances) and keep converging after a death.
func TestAgreeBackToBack(t *testing.T) {
	const n, victim = 4, 3
	results := agreeGroup(t, n, map[int]bool{victim: true}, func(c *Comm) (any, error) {
		var view []bool
		var flags uint32
		var cand int32
		var err error
		for round := 0; round < 3; round++ {
			flags, cand, view, err = c.Agree(uint32(0x30+round), int32(round), view)
			if err != nil {
				return nil, err
			}
		}
		return agreeRes{flags, cand, view}, err
	})
	got := checkUniform(t, results)
	if got.flags != 0x32 || got.cand != 2 || !got.view[victim] {
		t.Fatalf("final agreement %+v, want flags 0x32, cand 2, rank %d failed", got, victim)
	}
}

func BenchmarkAgree(b *testing.B) {
	const n = 4
	devs := transport.NewShmJob(n, 0)
	procs := make([]*core.Proc, n)
	comms := make([]*Comm, n)
	for i, d := range devs {
		procs[i] = core.NewProc(d, core.Config{})
		comms[i] = &Comm{P: procs[i], Ctx: 1, Rank: i, Size: n, World: func(gr int) int { return gr }}
	}
	defer func() {
		for _, p := range procs {
			p.Close()
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for _, c := range comms {
			wg.Add(1)
			go func(c *Comm) {
				defer wg.Done()
				c.Agree(1, 0, nil) //nolint:errcheck
			}(c)
		}
		wg.Wait()
	}
}
