// Package coll implements the collective-operation algorithms of the
// runtime over the core point-to-point engine: dissemination barrier,
// binomial broadcast/gather/scatter/reduce, ring allgather, pairwise
// alltoall, recursive-doubling allreduce, linear-chain scan, and the
// reduction operation kernels they share.
//
// Every algorithm is expressed as a schedule of isend/irecv/compute
// steps (sched.go) executed by a per-operation progress runner, so each
// collective has both a blocking entry point and a nonblocking I* form
// returning a *Request with Wait/Test/WaitCtx — cancellation points
// live inside the algorithm rounds, not just the point-to-point wait
// path. Tags carry a per-instance sequence number, letting any number
// of collectives on one communicator overlap in flight without
// cross-matching.
package coll

import (
	"fmt"
)

// ApplyFn folds one dense operand slice into another:
// inout[i] = op(in[i], inout[i]), where in is the operand contributed by
// the LOWER-ranked process. This matches the MPI user-function contract,
// so non-commutative user operations reduce in rank order.
type ApplyFn func(in, inout any) error

// Op is a reduction operation.
type Op struct {
	Name        string
	Commutative bool
	apply       ApplyFn
}

// NewOp wraps a user-defined reduction function (MPI_Op_create).
func NewOp(name string, commutative bool, fn ApplyFn) *Op {
	return &Op{Name: name, Commutative: commutative, apply: fn}
}

// Apply folds in into inout.
func (o *Op) Apply(in, inout any) error { return o.apply(in, inout) }

func (o *Op) String() string { return o.Name }

// numeric covers the storage classes arithmetic reductions accept.
type numeric interface {
	~byte | ~int16 | ~int32 | ~int64 | ~float32 | ~float64
}

// integer covers the classes bitwise reductions accept.
type integer interface {
	~byte | ~int16 | ~int32 | ~int64
}

func applyNum[T numeric](in, inout []T, f func(a, b T) T) {
	for i := range inout {
		inout[i] = f(in[i], inout[i])
	}
}

func applyBool(in, inout []bool, f func(a, b bool) bool) {
	for i := range inout {
		inout[i] = f(in[i], inout[i])
	}
}

// numOp builds an op defined on all numeric classes.
func numOp(name string, commutative bool, fi func(a, b int64) int64, ff func(a, b float64) float64) *Op {
	return NewOp(name, commutative, func(in, inout any) error {
		switch io := inout.(type) {
		case []byte:
			applyNum(in.([]byte), io, func(a, b byte) byte { return byte(fi(int64(a), int64(b))) })
		case []int16:
			applyNum(in.([]int16), io, func(a, b int16) int16 { return int16(fi(int64(a), int64(b))) })
		case []int32:
			applyNum(in.([]int32), io, func(a, b int32) int32 { return int32(fi(int64(a), int64(b))) })
		case []int64:
			applyNum(in.([]int64), io, fi)
		case []float32:
			applyNum(in.([]float32), io, func(a, b float32) float32 { return float32(ff(float64(a), float64(b))) })
		case []float64:
			applyNum(in.([]float64), io, ff)
		default:
			return fmt.Errorf("coll: op %s undefined on %T", name, inout)
		}
		return nil
	})
}

// intOp builds an op defined on integer classes only (bitwise family).
func intOp(name string, fi func(a, b int64) int64) *Op {
	return NewOp(name, true, func(in, inout any) error {
		switch io := inout.(type) {
		case []byte:
			applyNum(in.([]byte), io, func(a, b byte) byte { return byte(fi(int64(a), int64(b))) })
		case []int16:
			applyNum(in.([]int16), io, func(a, b int16) int16 { return int16(fi(int64(a), int64(b))) })
		case []int32:
			applyNum(in.([]int32), io, func(a, b int32) int32 { return int32(fi(int64(a), int64(b))) })
		case []int64:
			applyNum(in.([]int64), io, fi)
		default:
			return fmt.Errorf("coll: op %s undefined on %T", name, inout)
		}
		return nil
	})
}

// logicalOp builds an op defined on booleans and, following the C
// binding's convention (non-zero is true), on integer classes.
func logicalOp(name string, fb func(a, b bool) bool) *Op {
	toI := func(v bool) int64 {
		if v {
			return 1
		}
		return 0
	}
	fi := func(a, b int64) int64 { return toI(fb(a != 0, b != 0)) }
	return NewOp(name, true, func(in, inout any) error {
		switch io := inout.(type) {
		case []bool:
			applyBool(in.([]bool), io, fb)
		case []byte:
			applyNum(in.([]byte), io, func(a, b byte) byte { return byte(fi(int64(a), int64(b))) })
		case []int16:
			applyNum(in.([]int16), io, func(a, b int16) int16 { return int16(fi(int64(a), int64(b))) })
		case []int32:
			applyNum(in.([]int32), io, func(a, b int32) int32 { return int32(fi(int64(a), int64(b))) })
		case []int64:
			applyNum(in.([]int64), io, fi)
		default:
			return fmt.Errorf("coll: op %s undefined on %T", name, inout)
		}
		return nil
	})
}

func applyLoc[T numeric](in, inout []T, max bool) {
	for i := 0; i+1 < len(inout); i += 2 {
		a, ai := in[i], in[i+1]
		b, bi := inout[i], inout[i+1]
		better := a > b
		if !max {
			better = a < b
		}
		// On equal values MPI selects the minimum index.
		if better || (a == b && ai < bi) {
			inout[i], inout[i+1] = a, ai
		}
	}
}

// locOp builds MINLOC/MAXLOC, operating on (value, index) pairs laid out
// as consecutive elements of one of the pair datatypes.
func locOp(name string, max bool) *Op {
	return NewOp(name, true, func(in, inout any) error {
		switch io := inout.(type) {
		case []byte:
			applyLoc(in.([]byte), io, max)
		case []int16:
			applyLoc(in.([]int16), io, max)
		case []int32:
			applyLoc(in.([]int32), io, max)
		case []int64:
			applyLoc(in.([]int64), io, max)
		case []float32:
			applyLoc(in.([]float32), io, max)
		case []float64:
			applyLoc(in.([]float64), io, max)
		default:
			return fmt.Errorf("coll: op %s undefined on %T", name, inout)
		}
		return nil
	})
}

// Predefined reduction operations (MPI §4.9.2).
var (
	Sum  = numOp("MPI_SUM", true, func(a, b int64) int64 { return a + b }, func(a, b float64) float64 { return a + b })
	Prod = numOp("MPI_PROD", true, func(a, b int64) int64 { return a * b }, func(a, b float64) float64 { return a * b })
	Max  = numOp("MPI_MAX", true, maxI, maxF)
	Min  = numOp("MPI_MIN", true, minI, minF)
	Land = logicalOp("MPI_LAND", func(a, b bool) bool { return a && b })
	Lor  = logicalOp("MPI_LOR", func(a, b bool) bool { return a || b })
	Lxor = logicalOp("MPI_LXOR", func(a, b bool) bool { return a != b })
	Band = intOp("MPI_BAND", func(a, b int64) int64 { return a & b })
	Bor  = intOp("MPI_BOR", func(a, b int64) int64 { return a | b })
	Bxor = intOp("MPI_BXOR", func(a, b int64) int64 { return a ^ b })

	MaxLoc = locOp("MPI_MAXLOC", true)
	MinLoc = locOp("MPI_MINLOC", false)
)

func maxI(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minI(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
