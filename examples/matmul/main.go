// Matmul: parallel dense matrix multiplication C = A·B with the classic
// master/worker decomposition of early MPI courses — A's rows scattered
// with Scatterv, B broadcast, partial C gathered with Gatherv — then
// checked against a serial product.
//
//	go run ./examples/matmul [-n 192] [-np 4]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"gompi/mpi"
)

func main() {
	n := flag.Int("n", 192, "matrix order")
	np := flag.Int("np", 4, "number of ranks")
	flag.Parse()
	if err := mpi.Run(*np, func(env *mpi.Env) error {
		return matmul(env, *n)
	}); err != nil {
		log.Fatal(err)
	}
}

func matmul(env *mpi.Env, n int) error {
	world := env.CommWorld()
	rank, size := world.Rank(), world.Size()

	// Row distribution: the first (n mod size) ranks get one extra row.
	counts := make([]int, size) // in elements (rows * n)
	displs := make([]int, size)
	rows := make([]int, size)
	off := 0
	for r := 0; r < size; r++ {
		rows[r] = n / size
		if r < n%size {
			rows[r]++
		}
		counts[r] = rows[r] * n
		displs[r] = off
		off += counts[r]
	}

	var a, c []float64
	b := make([]float64, n*n)
	if rank == 0 {
		a = make([]float64, n*n)
		c = make([]float64, n*n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a[i*n+j] = float64((i+j)%7) - 3
				b[i*n+j] = float64((i*j)%5) - 2
			}
		}
	}

	start := env.Wtime()
	// B everywhere, A rows to their owners.
	if err := world.Bcast(b, 0, n*n, mpi.DOUBLE, 0); err != nil {
		return err
	}
	myA := make([]float64, counts[rank])
	if err := world.Scatterv(a, 0, counts, displs, mpi.DOUBLE,
		myA, 0, counts[rank], mpi.DOUBLE, 0); err != nil {
		return err
	}

	// Local product: myC = myA · B.
	myC := make([]float64, counts[rank])
	for i := 0; i < rows[rank]; i++ {
		for k := 0; k < n; k++ {
			aik := myA[i*n+k]
			if aik == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				myC[i*n+j] += aik * b[k*n+j]
			}
		}
	}

	if err := world.Gatherv(myC, 0, counts[rank], mpi.DOUBLE,
		c, 0, counts, displs, mpi.DOUBLE, 0); err != nil {
		return err
	}
	elapsed := env.Wtime() - start

	if rank == 0 {
		// Spot-check against a serial product.
		worst := 0.0
		for _, i := range []int{0, n / 2, n - 1} {
			for _, j := range []int{0, n / 3, n - 1} {
				want := 0.0
				for k := 0; k < n; k++ {
					want += a[i*n+k] * b[k*n+j]
				}
				if d := math.Abs(c[i*n+j] - want); d > worst {
					worst = d
				}
			}
		}
		if worst > 1e-9 {
			return fmt.Errorf("matmul: verification failed, max error %g", worst)
		}
		flops := 2 * float64(n) * float64(n) * float64(n)
		fmt.Printf("matmul: %d ranks, %dx%d, %.3fs, %.1f Mflop/s, verified\n",
			size, n, n, elapsed, flops/elapsed/1e6)
	}
	return nil
}
