// Objects: the paper's §2.2 proposal — message buffers of serializable
// objects travelling as MPI.OBJECT, serialized automatically in the send
// wrapper and unserialized at the destination (Go's gob standing in for
// Java object serialization). A pipeline of ranks passes a work ticket
// around a ring; each rank appends its signature and forwards it.
//
//	go run ./examples/objects [-np 4]
package main

import (
	"flag"
	"fmt"
	"log"

	"gompi/mpi"
)

// Ticket is an arbitrary serializable object graph.
type Ticket struct {
	ID        int
	Hops      []string
	Payload   map[string]float64
	Completed bool
}

func main() {
	np := flag.Int("np", 4, "number of ranks")
	flag.Parse()
	if err := mpi.Run(*np, ring); err != nil {
		log.Fatal(err)
	}
}

func ring(env *mpi.Env) error {
	// Every rank registers the concrete types its OBJECT buffers carry
	// (the analogue of implementing java.io.Serializable).
	mpi.RegisterObject(Ticket{})
	mpi.RegisterObject(map[string]float64{})

	world := env.CommWorld()
	rank, size := world.Rank(), world.Size()
	next, prev := (rank+1)%size, (rank-1+size)%size

	if rank == 0 {
		tickets := []any{
			Ticket{ID: 1, Payload: map[string]float64{"load": 0.5}},
			Ticket{ID: 2, Payload: map[string]float64{"load": 1.25}},
		}
		if err := world.Send(tickets, 0, len(tickets), mpi.OBJECT, next, 1); err != nil {
			return err
		}
		// Collect the completed tickets after the full circuit.
		in := make([]any, len(tickets))
		st, err := world.Recv(in, 0, len(in), mpi.OBJECT, prev, 1)
		if err != nil {
			return err
		}
		for i := 0; i < st.GetCount(mpi.OBJECT); i++ {
			t := in[i].(Ticket)
			if len(t.Hops) != size-1 {
				return fmt.Errorf("ticket %d visited %d ranks, want %d", t.ID, len(t.Hops), size-1)
			}
			fmt.Printf("ticket %d: hops=%v load=%.2f\n", t.ID, t.Hops, t.Payload["load"])
		}
		return nil
	}

	in := make([]any, 2)
	st, err := world.Recv(in, 0, len(in), mpi.OBJECT, prev, 1)
	if err != nil {
		return err
	}
	out := make([]any, 0, st.GetCount(mpi.OBJECT))
	for i := 0; i < st.GetCount(mpi.OBJECT); i++ {
		t := in[i].(Ticket)
		t.Hops = append(t.Hops, fmt.Sprintf("rank%d", rank))
		t.Payload["load"] *= 2
		out = append(out, t)
	}
	return world.Send(out, 0, len(out), mpi.OBJECT, next, 1)
}
