// Quickstart: the paper's Fig. 3 minimal mpiJava program — rank 0 sends
// "Hello, there" to rank 1 — written against the typed API: the
// datatype is inferred from the buffer's element type and slicing
// replaces the classic (offset, count) pair, so the transfer carries no
// explicit *Datatype or count arguments at all.
//
// Run in-process (SM mode):
//
//	go run ./examples/quickstart
//
// Run as separate OS processes (DM mode):
//
//	go build -o /tmp/quickstart ./examples/quickstart
//	go run ./cmd/mpirun -np 2 /tmp/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"gompi/internal/launch"
	"gompi/mpi"
	"gompi/mpi/typed"
)

func main() {
	if os.Getenv(launch.EnvSize) != "" {
		// Launched by mpirun: one rank per OS process (paper Fig. 3's
		// structure: MPI.Init ... MPI.Finalize).
		env, _, err := mpi.Init(os.Args)
		if err != nil {
			log.Fatal(err)
		}
		if err := hello(env); err != nil {
			log.Fatal(err)
		}
		if err := env.Finalize(); err != nil {
			log.Fatal(err)
		}
		return
	}
	// Stand-alone: run both ranks in-process.
	if err := mpi.Run(2, hello); err != nil {
		log.Fatal(err)
	}
}

func hello(env *mpi.Env) error {
	world := env.CommWorld()
	switch world.Rank() {
	case 0:
		return typed.Send(world, []rune("Hello, there"), 1, 99)
	case 1:
		message := make([]rune, 20)
		st, err := typed.Recv(world, message, 0, 99)
		if err != nil {
			return err
		}
		fmt.Printf("received:%s:\n", string(message[:typed.Count[rune](st)]))
	}
	// Ranks beyond the pair (the paper's program runs in exactly two
	// processes) have nothing to do.
	return nil
}
