// Quickstart: the paper's Fig. 3 minimal mpiJava program — rank 0 sends
// "Hello, there" to rank 1 — written against the typed API: the
// datatype is inferred from the buffer's element type and slicing
// replaces the classic (offset, count) pair, so the transfer carries no
// explicit *Datatype or count arguments at all.
//
// Run in-process (SM mode):
//
//	go run ./examples/quickstart
//
// Run as separate OS processes (DM mode):
//
//	go build -o /tmp/quickstart ./examples/quickstart
//	go run ./cmd/mpirun -np 2 /tmp/quickstart
package main

import (
	"fmt"
	"log"

	"gompi/mpi"
	"gompi/mpi/typed"
)

func main() {
	// mpi.Main runs both ranks in-process stand-alone (SM mode), or
	// this process's single rank when launched under cmd/mpirun (the
	// paper Fig. 3 structure: MPI.Init ... MPI.Finalize).
	if err := mpi.Main(2, hello); err != nil {
		log.Fatal(err)
	}
}

func hello(env *mpi.Env) error {
	world := env.CommWorld()
	switch world.Rank() {
	case 0:
		return typed.Send(world, []rune("Hello, there"), 1, 99)
	case 1:
		message := make([]rune, 20)
		st, err := typed.Recv(world, message, 0, 99)
		if err != nil {
			return err
		}
		fmt.Printf("received:%s:\n", string(message[:typed.Count[rune](st)]))
	}
	// Ranks beyond the pair (the paper's program runs in exactly two
	// processes) have nothing to do.
	return nil
}
