// Pi: the classic SPMD numerical-integration example — each rank
// integrates a strided slice of ∫₀¹ 4/(1+x²) dx and a Reduce(SUM)
// assembles π at rank 0. A second phase estimates π by Monte Carlo with
// rank-decorrelated streams and an Allreduce, exercising int64
// reductions. Written against the typed API: datatypes are inferred,
// reduction ops are bound to the element type at compile time, and the
// scalar conveniences (ReduceOne/AllreduceOne) replace the one-element
// slice dance of the classic binding.
//
// Run in-process (SM mode):
//
//	go run ./examples/pi [-n 2000000] [-np 4]
//
// Run as separate OS processes (DM mode):
//
//	go build -o /tmp/pi ./examples/pi
//	go run ./cmd/mpirun -np 4 /tmp/pi
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"

	"gompi/mpi"
	"gompi/mpi/typed"
)

func main() {
	n := flag.Int("n", 2_000_000, "integration intervals / samples")
	np := flag.Int("np", 4, "number of ranks (SM mode)")
	flag.Parse()
	// mpi.Main runs SM mode (np goroutine ranks) stand-alone, or this
	// process's single rank when launched under cmd/mpirun (DM mode).
	if err := mpi.Main(*np, func(env *mpi.Env) error {
		return pi(env, *n)
	}); err != nil {
		log.Fatal(err)
	}
}

func pi(env *mpi.Env, n int) error {
	world := env.CommWorld()
	rank, size := world.Rank(), world.Size()

	// Phase 1: midpoint rule, strided across ranks.
	h := 1.0 / float64(n)
	sum := 0.0
	for i := rank; i < n; i += size {
		x := h * (float64(i) + 0.5)
		sum += 4.0 / (1.0 + x*x)
	}
	total, err := typed.ReduceOne(world, h*sum, typed.Sum[float64](), 0)
	if err != nil {
		return err
	}
	if rank == 0 {
		fmt.Printf("pi (integration): %.12f  error %.3e\n", total, math.Abs(total-math.Pi))
	}

	// Phase 2: Monte Carlo with per-rank streams.
	rng := rand.New(rand.NewSource(int64(rank)*7919 + 17))
	local := n / size
	hits := int64(0)
	for i := 0; i < local; i++ {
		x, y := rng.Float64(), rng.Float64()
		if x*x+y*y <= 1 {
			hits++
		}
	}
	global := make([]int64, 2)
	if err := typed.Allreduce(world, []int64{hits, int64(local)}, global, typed.Sum[int64]()); err != nil {
		return err
	}
	est := 4 * float64(global[0]) / float64(global[1])
	if rank == 0 {
		fmt.Printf("pi (monte carlo): %.6f  (%d samples)\n", est, global[1])
	}
	// Every rank holds the same global estimate after Allreduce.
	if math.Abs(est-math.Pi) > 0.05 {
		return fmt.Errorf("rank %d: monte carlo estimate %v too far from pi", rank, est)
	}
	return nil
}
