// Jacobi: iterative 2-D heat diffusion on a column-partitioned grid —
// the paper's §2.2 motivating case for derived datatypes. The global
// N×N grid is linearized row-major into a one-dimensional array (Java
// and Go have no true multidimensional arrays, §2.2); each rank owns a
// band of columns plus one halo column per neighbour. The whole
// exchange is persistent (MPI_Send_init/MPI_Recv_init): the halo
// envelopes are validated and frozen once before the loop, and each
// sweep just Starts them — outgoing halo columns, strided sections of
// the local array, travel as MPI_TYPE_VECTOR datatypes (one persistent
// send per buffer of the swapped grid/next pair), and incoming halos
// land in preallocated contiguous buffers on the zero-copy RecvIntoInit
// path, so a steady-state sweep performs no validation and no
// allocation. Convergence is a persistent MAX allreduce
// (MPI_Allreduce_init) of the local residuals, overlapped with the next
// sweep: the activation started after sweep k is only waited for after
// sweep k+1's compute, so the collective's latency hides behind the
// relaxation instead of serializing every iteration (the check lags one
// sweep, costing at most one extra iteration).
//
// Checkpoint/restart rides on the parallel I/O subsystem: -checkpoint
// writes the converged (or iteration-capped) grid through a strided
// mpi.File view — each rank's column band is a MPI_TYPE_VECTOR over
// the row-major global matrix, so the collective WriteAtAll needs no
// caller-side gather loop — and -restore resumes a later run from that
// file, bit-exactly reproducing an uninterrupted run's trajectory. The
// checkpoint stores the global grid, so the restoring job may even use
// a different rank count. Periodic checkpoints (-checkpoint-every)
// overlap with the solve: the band is copied to a stable buffer, the
// collective write is started nonblocking (IwriteAtAll) against a
// temporary file and sweeps continue while it drains; the write is
// settled at the next checkpoint epoch (or at the end of the run) and
// the temporary is atomically renamed into place, so the checkpoint
// path never holds a half-written file.
//
// Fault tolerance (-survive) closes the loop with the ULFM repair
// primitives: when a sweep dies with MPI_ERR_PROC_FAILED or
// MPI_ERR_REVOKED, the survivors revoke the communicator (freeing peers
// still blocked on the dead rank), acknowledge the failure, Shrink to a
// fresh communicator, repartition the grid over the remaining ranks and
// resume from the latest periodic checkpoint (-checkpoint-every). The
// sweep is deterministic in the global grid state and independent of the
// partition, so the repaired run's result line is verbatim-identical to
// an undisturbed run's.
//
// Adding -respawn closes the other half of the loop with the dynamic
// process primitives: after shrinking, the survivors Spawn one
// replacement per lost rank, Merge the new world in (survivors ordered
// first, so ranks stay stable) and repartition at full size; the
// replacements find their parent world through Env.Parent, merge, and
// restore from the shared checkpoint like everyone else.
//
//	go run ./examples/jacobi [-n 96] [-np 4] [-iters 500] \
//	    [-checkpoint FILE] [-restore FILE] \
//	    [-survive] [-respawn] [-checkpoint-every N] [-dawdle DUR]
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"time"

	"gompi/mpi"
)

func main() {
	n := flag.Int("n", 96, "global grid side")
	np := flag.Int("np", 4, "number of ranks (SM mode)")
	iters := flag.Int("iters", 500, "max iterations (absolute, including restored ones)")
	tol := flag.Float64("tol", 1e-4, "convergence threshold")
	ckpt := flag.String("checkpoint", "", "write a checkpoint file at end of run")
	restore := flag.String("restore", "", "resume from a checkpoint file")
	survive := flag.Bool("survive", false, "on rank failure: revoke, shrink, restore from the -checkpoint file and keep sweeping")
	respawn := flag.Bool("respawn", false, "with -survive: after shrinking, spawn replacement ranks and merge back to full size")
	ckptEvery := flag.Int("checkpoint-every", 0, "write the -checkpoint file every N sweeps (0 = only at end)")
	dawdle := flag.Duration("dawdle", 0, "sleep per sweep, stretching the run so an external kill lands mid-solve")
	flag.Parse()
	// mpi.Main runs SM mode (np goroutine ranks) stand-alone, or this
	// process's single rank when launched under cmd/mpirun (DM mode).
	err := mpi.Main(*np, func(env *mpi.Env) error {
		return jacobi(env, params{
			n: *n, maxIters: *iters, tol: *tol,
			ckpt: *ckpt, restore: *restore,
			survive: *survive, respawn: *respawn, ckptEvery: *ckptEvery, dawdle: *dawdle,
		})
	})
	if err != nil {
		log.Fatal(err)
	}
}

// params carries the solver configuration through the repair loop.
type params struct {
	n, maxIters int
	tol         float64
	ckpt        string
	restore     string
	survive     bool
	respawn     bool
	ckptEvery   int
	dawdle      time.Duration
}

// ftError reports whether err is a peer failure or a revocation — the
// two classes the ULFM repair loop can recover from.
func ftError(err error) bool {
	switch mpi.ClassOf(err) {
	case mpi.ErrProcFailed, mpi.ErrRevoked:
		return true
	}
	return false
}

// jacobi runs the solve, and in -survive mode repairs the communicator
// and resumes after every recoverable failure: revoke (unblocks peers
// still waiting on the dead rank), acknowledge, shrink to the
// survivors, then restore from the latest checkpoint — or from scratch
// if none was written yet. Every survivor observes the failure (the
// residual allreduce spans all ranks), so all of them run this same
// repair sequence in program order, which is what Revoke/Shrink require.
func jacobi(env *mpi.Env, p params) error {
	comm := env.CommWorld()
	restoreFrom := p.restore
	// A spawned replacement rank joins the repaired world before its
	// first sweep: connect back through the parent's port, merge with
	// the survivors ordered first (so their ranks are stable), and pick
	// up the shared checkpoint.
	if parent, err := env.Parent(); err != nil {
		return err
	} else if parent != nil {
		merged, err := parent.Merge(true)
		if err != nil {
			return err
		}
		comm = merged
		if p.ckpt != "" {
			if _, statErr := os.Stat(p.ckpt); statErr == nil {
				restoreFrom = p.ckpt
			}
		}
		fmt.Fprintf(os.Stderr, "jacobi: joined as replacement rank %d/%d\n", comm.Rank(), comm.Size())
	}
	origSize := comm.Size()
	for {
		err := solve(env, comm, p, restoreFrom)
		if err == nil || !p.survive || !ftError(err) {
			return err
		}
		fmt.Fprintf(os.Stderr, "jacobi: rank %d/%d: %v; repairing\n", comm.Rank(), comm.Size(), err)
		if rerr := comm.Revoke(); rerr != nil {
			return errors.Join(err, rerr)
		}
		if aerr := comm.FailureAck(); aerr != nil {
			return errors.Join(err, aerr)
		}
		shrunk, serr := comm.Shrink()
		if serr != nil {
			return errors.Join(err, serr)
		}
		comm = shrunk
		// Resume from the latest checkpoint when one exists; otherwise
		// recompute from the initial state — either way the trajectory,
		// being deterministic in the grid, reproduces the undisturbed
		// run's exactly.
		restoreFrom = ""
		if p.ckpt != "" {
			if _, statErr := os.Stat(p.ckpt); statErr == nil {
				restoreFrom = p.ckpt
			}
		}
		fmt.Fprintf(os.Stderr, "jacobi: shrunk to %d ranks (rank %d), restoring from %q\n",
			comm.Size(), comm.Rank(), restoreFrom)
		// -respawn grows the world back: spawn one replacement per lost
		// rank, merge with the survivors first so their ranks (and rank
		// 0's reporting role) are stable, and repartition at full size.
		if p.respawn && comm.Size() < origSize {
			ic, sperr := comm.Spawn(os.Args[0], os.Args[1:], origSize-comm.Size())
			if sperr != nil {
				return errors.Join(err, sperr)
			}
			grown, merr := ic.Merge(false)
			if merr != nil {
				return errors.Join(err, merr)
			}
			comm = grown
			fmt.Fprintf(os.Stderr, "jacobi: respawned to %d ranks (rank %d)\n", comm.Size(), comm.Rank())
		}
		if p.n%comm.Size() != 0 {
			return fmt.Errorf("cannot repartition: grid side %d does not divide by %d survivors", p.n, comm.Size())
		}
	}
}

// checkpoint file layout, all MPI.DOUBLE: a hdrLen-element header
// [magic, grid side, completed sweeps, last drained residual (-1 if
// none)] followed by the n×n grid in global row-major order. The
// residual is the value the next iteration's lagged convergence check
// would have consumed, so a restored run reconstructs the overlapped
// reduction pipeline exactly.
const (
	ckptMagic  = 0x6a61636f // "jaco"
	ckptHdrLen = 4
)

// gridTypes builds the matching (file view, buffer section) pair for
// one rank's column band: in the file, n blocks of cols doubles with
// stride n (the band of a row-major n×n matrix); in memory the same
// shape with the local stride width.
func gridTypes(n, cols, width int) (ft, bt *mpi.Datatype, err error) {
	if ft, err = mpi.TypeVector(n, cols, n, mpi.DOUBLE); err != nil {
		return nil, nil, err
	}
	ft.Commit()
	if bt, err = mpi.TypeVector(n, cols, width, mpi.DOUBLE); err != nil {
		return nil, nil, err
	}
	bt.Commit()
	return ft, bt, nil
}

// writeCheckpoint collectively writes the header and the grid: rank 0
// writes the header independently through the identity view, then all
// ranks write their column bands through strided views in one
// collective two-phase WriteAtAll.
func writeCheckpoint(world *mpi.Intracomm, path string, grid []float64, n, cols, width, it int, lastRes float64) error {
	f, err := world.OpenFile(path, mpi.ModeCreate|mpi.ModeWronly)
	if err != nil {
		return err
	}
	if err := f.SetView(0, mpi.DOUBLE, mpi.DOUBLE); err != nil {
		return err
	}
	if world.Rank() == 0 {
		hdr := []float64{ckptMagic, float64(n), float64(it), lastRes}
		if _, err := f.WriteAt(0, hdr, 0, ckptHdrLen, mpi.DOUBLE); err != nil {
			return err
		}
	}
	ft, bt, err := gridTypes(n, cols, width)
	if err != nil {
		return err
	}
	if err := f.SetView(ckptHdrLen+world.Rank()*cols, mpi.DOUBLE, ft); err != nil {
		return err
	}
	if _, err := f.WriteAtAll(0, grid, 1, 1, bt); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

// asyncCkpt is a periodic checkpoint in flight: the header is written,
// the band's collective write has been started from a stable copy of
// the grid, and sweeps continue while it drains. finish settles the
// write, syncs, closes and atomically renames the temporary into place.
type asyncCkpt struct {
	world *mpi.Intracomm
	f     *mpi.File
	req   *mpi.FileCollRequest
	tmp   string
	path  string
}

// startCheckpoint begins an overlapped checkpoint write. band must be a
// stable snapshot the solver will not touch until finish: the write
// proceeds in the background. Collective — the gate that calls it must
// be uniform across ranks.
func startCheckpoint(world *mpi.Intracomm, path string, band []float64, n, cols, width, it int, lastRes float64) (*asyncCkpt, error) {
	tmp := path + ".tmp"
	f, err := world.OpenFile(tmp, mpi.ModeCreate|mpi.ModeWronly)
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*asyncCkpt, error) {
		f.Close() //nolint:errcheck // best-effort teardown
		return nil, err
	}
	if err := f.SetView(0, mpi.DOUBLE, mpi.DOUBLE); err != nil {
		return fail(err)
	}
	if world.Rank() == 0 {
		hdr := []float64{ckptMagic, float64(n), float64(it), lastRes}
		if _, err := f.WriteAt(0, hdr, 0, ckptHdrLen, mpi.DOUBLE); err != nil {
			return fail(err)
		}
	}
	ft, bt, err := gridTypes(n, cols, width)
	if err != nil {
		return fail(err)
	}
	if err := f.SetView(ckptHdrLen+world.Rank()*cols, mpi.DOUBLE, ft); err != nil {
		return fail(err)
	}
	req, err := f.IwriteAtAll(0, band, 1, 1, bt)
	if err != nil {
		return fail(err)
	}
	return &asyncCkpt{world: world, f: f, req: req, tmp: tmp, path: path}, nil
}

// finish settles the in-flight band write and publishes the checkpoint:
// sync, collective close, then rank 0 renames the temporary over the
// real path — atomically, so -survive's restore never sees a torn file.
func (a *asyncCkpt) finish() error {
	if _, err := a.req.Wait(); err != nil {
		a.f.Close() //nolint:errcheck // best-effort teardown
		return err
	}
	if err := a.f.Sync(); err != nil {
		a.f.Close() //nolint:errcheck // best-effort teardown
		return err
	}
	if err := a.f.Close(); err != nil {
		return err
	}
	if a.world.Rank() == 0 {
		if err := os.Rename(a.tmp, a.path); err != nil {
			return err
		}
	}
	return nil
}

// abort tears the in-flight checkpoint down best-effort on the solve's
// error paths: no collective settling (the communicator may be dead or
// revoked) — just release the handle and drop the temporary.
func (a *asyncCkpt) abort() {
	a.f.Close() //nolint:errcheck // best-effort teardown
	if a.world.Rank() == 0 {
		os.Remove(a.tmp) //nolint:errcheck // best-effort teardown
	}
}

// readCheckpoint restores the rank's column band and returns the
// completed sweep count and last drained residual from the header.
func readCheckpoint(world *mpi.Intracomm, path string, grid []float64, n, cols, width int) (int, float64, error) {
	f, err := world.OpenFile(path, mpi.ModeRdonly)
	if err != nil {
		return 0, 0, err
	}
	if err := f.SetView(0, mpi.DOUBLE, mpi.DOUBLE); err != nil {
		return 0, 0, err
	}
	hdr := make([]float64, ckptHdrLen)
	st, err := f.ReadAt(0, hdr, 0, ckptHdrLen, mpi.DOUBLE)
	if err != nil {
		return 0, 0, err
	}
	if st.GetCount(mpi.DOUBLE) != ckptHdrLen || hdr[0] != ckptMagic {
		return 0, 0, fmt.Errorf("%s is not a jacobi checkpoint", path)
	}
	if int(hdr[1]) != n {
		return 0, 0, fmt.Errorf("checkpoint grid side %d does not match -n %d", int(hdr[1]), n)
	}
	ft, bt, err := gridTypes(n, cols, width)
	if err != nil {
		return 0, 0, err
	}
	if err := f.SetView(ckptHdrLen+world.Rank()*cols, mpi.DOUBLE, ft); err != nil {
		return 0, 0, err
	}
	st, err = f.ReadAtAll(0, grid, 1, 1, bt)
	if err != nil {
		return 0, 0, err
	}
	if got := st.GetCount(bt); got != 1 {
		return 0, 0, fmt.Errorf("checkpoint truncated: band read returned count %d", got)
	}
	if err := f.Close(); err != nil {
		return 0, 0, err
	}
	return int(hdr[2]), hdr[3], nil
}

func solve(env *mpi.Env, world *mpi.Intracomm, p params, restore string) error {
	n, maxIters, tol, ckpt := p.n, p.maxIters, p.tol, p.ckpt
	rank, size := world.Rank(), world.Size()
	if n%size != 0 {
		return fmt.Errorf("grid side %d must divide by %d ranks", n, size)
	}
	cols := n / size
	width := cols + 2 // owned columns plus two halo columns

	// Row-major local band: grid[r*width + c], c=0 and c=width-1 halos.
	grid := make([]float64, n*width)
	next := make([]float64, n*width)

	// Boundary condition: the global left edge (the first owned column
	// of rank 0, local index 1) is hot.
	if rank == 0 {
		for r := 0; r < n; r++ {
			grid[r*width+1] = 1.0
			next[r*width+1] = 1.0
		}
	}

	// An outgoing halo column is a strided section: n blocks of 1
	// double, stride width — exactly MPI_TYPE_VECTOR over the
	// linearized array.
	colType, err := mpi.TypeVector(n, 1, width, mpi.DOUBLE)
	if err != nil {
		return err
	}
	colType.Commit()

	left, right := rank-1, rank+1
	if left < 0 {
		left = mpi.ProcNull
	}
	if right >= size {
		right = mpi.ProcNull
	}

	// Preallocated contiguous halo landing zones: incoming columns are
	// deposited here directly off the wire (RecvInto), then scattered
	// into the strided halo column. The buffers live for the whole
	// solve — the halo exchange allocates nothing per iteration.
	haloL := make([]float64, n)
	haloR := make([]float64, n)

	// Persistent halo exchange: the envelopes are validated and frozen
	// here, once; each sweep just Starts them. The receives bind the
	// fixed landing zones on the zero-copy path. The sends are strided
	// column sections of whichever array currently holds the grid — the
	// grid/next swap alternates between two fixed arrays, so each
	// direction freezes one persistent send per array and the loop
	// Starts the pair matching the current parity.
	recvL, err := world.RecvIntoInit(haloL, 0, n, mpi.DOUBLE, left, 2)
	if err != nil {
		return err
	}
	recvR, err := world.RecvIntoInit(haloR, 0, n, mpi.DOUBLE, right, 1)
	if err != nil {
		return err
	}
	var sendL, sendR [2]*mpi.PersistentRequest
	for i, g := range [2][]float64{grid, next} {
		if sendL[i], err = world.SendInit(g, 1, 1, colType, left, 1); err != nil {
			return err
		}
		if sendR[i], err = world.SendInit(g, width-2, 1, colType, right, 2); err != nil {
			return err
		}
	}
	par := 0 // index of the array the grid variable currently aliases
	defer func() {
		for _, pr := range []*mpi.PersistentRequest{recvL, recvR, sendL[0], sendL[1], sendR[0], sendR[1]} {
			pr.Free() //nolint:errcheck // handle release at end of solve
		}
	}()

	// Resuming replaces the freshly initialized band with the
	// checkpointed one and skips the sweeps it already carries; the
	// trajectory from there is bit-identical to an uninterrupted run,
	// since the sweep is deterministic in the grid state. pipeRes
	// reconstructs the overlapped reduction pipeline: it is the
	// residual the first resumed iteration's lagged convergence check
	// would have drained (-1: none pending).
	it0 := 0
	pipeRes := -1.0
	if restore != "" {
		var err error
		if it0, pipeRes, err = readCheckpoint(world, restore, grid, n, cols, width); err != nil {
			return err
		}
		copy(next, grid)
	}

	// In-flight residual reduction, persistent: the MAX allreduce over
	// the fixed one-element buffers is planned once, and each sweep's
	// activation is a bare Start — re-pack, enqueue on the shared
	// progress pool, done. Started after sweep k, waited for after sweep
	// k+1's compute, so communication overlaps computation.
	resIn := []float64{0}
	resOut := []float64{0}
	resRed, err := world.AllreduceInit(resIn, 0, resOut, 0, 1, mpi.DOUBLE, mpi.MAX)
	if err != nil {
		return err
	}
	resInFlight := false
	defer resRed.Free() //nolint:errcheck // handle release at end of solve
	lastRes := pipeRes  // most recently drained residual, for the checkpoint header

	// Overlapped periodic checkpointing: the band is snapshotted into
	// ckptBuf and the collective write drains while later sweeps run.
	var pending *asyncCkpt
	var ckptBuf []float64
	if ckpt != "" && p.ckptEvery > 0 {
		ckptBuf = make([]float64, n*width)
	}
	defer func() {
		// Error paths (including -survive's recoverable failures) leave
		// the in-flight checkpoint torn down best-effort; success paths
		// have settled it and cleared pending.
		if pending != nil {
			pending.abort()
		}
	}()

	// A checkpoint taken at convergence carries a residual already
	// under tol; an uninterrupted run performs no sweeps past its
	// convergence break, so neither must a restored one.
	if pipeRes >= 0 && pipeRes < tol {
		maxIters = it0
	}

	start := env.Wtime()
	it := it0
	for ; it < maxIters; it++ {
		if p.dawdle > 0 {
			// Stretch the sweep so an externally injected kill (the CI
			// chaos job's SIGKILL) reliably lands mid-solve.
			time.Sleep(p.dawdle)
		}
		// Exchange halos: one StartAll activates the persistent receives
		// (listed first, so they are posted before the matching sends)
		// and the persistent sends bound to the array holding the
		// current grid; then settle all four and scatter the landed
		// halos.
		if err := mpi.StartAll([]*mpi.PersistentRequest{recvL, recvR, sendL[par], sendR[par]}); err != nil {
			return err
		}
		stL, err := recvL.Wait()
		if err != nil {
			return err
		}
		stR, err := recvR.Wait()
		if err != nil {
			return err
		}
		if _, err := sendL[par].Wait(); err != nil {
			return err
		}
		if _, err := sendR[par].Wait(); err != nil {
			return err
		}
		if left != mpi.ProcNull && stL.GetCount(mpi.DOUBLE) == n {
			for r := 0; r < n; r++ {
				grid[r*width] = haloL[r]
			}
		}
		if right != mpi.ProcNull && stR.GetCount(mpi.DOUBLE) == n {
			for r := 0; r < n; r++ {
				grid[r*width+width-1] = haloR[r]
			}
		}

		// Relax the interior.
		local := 0.0
		for r := 1; r < n-1; r++ {
			for c := 1; c <= cols; c++ {
				// Skip the fixed global edges.
				gc := rank*cols + (c - 1)
				if gc == 0 || gc == n-1 {
					next[r*width+c] = grid[r*width+c]
					continue
				}
				v := 0.25 * (grid[(r-1)*width+c] + grid[(r+1)*width+c] +
					grid[r*width+c-1] + grid[r*width+c+1])
				if d := math.Abs(v - grid[r*width+c]); d > local {
					local = d
				}
				next[r*width+c] = v
			}
		}
		grid, next = next, grid
		par ^= 1

		// The previous sweep's residual reduction has been overlapping
		// this sweep's halo exchange and relaxation; settle it now (on
		// the first resumed iteration, the checkpointed pipeRes stands
		// in for it). The reduced maximum is identical on every rank,
		// so all ranks take the same branch and the collective call
		// sequence stays aligned.
		settled := -1.0
		if resInFlight {
			if _, err := resRed.Wait(); err != nil {
				return err
			}
			resInFlight = false
			settled = resOut[0]
		} else if pipeRes >= 0 {
			settled, pipeRes = pipeRes, -1
		}
		if settled >= 0 {
			lastRes = settled
			if settled < tol {
				// Sweep `it` has completed; count it before leaving so
				// `it` uniformly means sweeps carried by the grid.
				it++
				break
			}
		}

		// Periodic checkpoint for -survive: snapshotted from `next`,
		// which after the swap holds the grid with exactly `it` sweeps,
		// paired with `settled` — the residual of sweep it-1 — so the
		// header keeps the (sweeps S, residual of sweep S-1) invariant
		// the restore path reconstructs the reduction pipeline from. The
		// gate is uniform (it and the reduced residual agree on every
		// rank), keeping the collective write aligned. The write itself
		// overlaps the following sweeps: settle the previous epoch's
		// write if it is still in flight, snapshot the band into the
		// stable buffer, and start the next one nonblocking.
		if ckpt != "" && p.ckptEvery > 0 && settled >= 0 && it%p.ckptEvery == 0 {
			if pending != nil {
				if err := pending.finish(); err != nil {
					return err
				}
				pending = nil
			}
			copy(ckptBuf, next)
			if pending, err = startCheckpoint(world, ckpt, ckptBuf, n, cols, width, it, settled); err != nil {
				return err
			}
		}

		// Launch this sweep's residual reduction; the activation
		// completes in the background while the next sweep computes
		// (collectives travel on their own context, so they cannot
		// interfere with the halo point-to-point traffic).
		resIn[0] = local
		if err := resRed.Start(); err != nil {
			return err
		}
		resInFlight = true
	}
	// Drain the final in-flight reduction so every rank has made the
	// same collective calls before the closing Reduce.
	if resInFlight {
		if _, err := resRed.Wait(); err != nil {
			return err
		}
		resInFlight = false
		lastRes = resOut[0]
	}
	// Settle the last overlapped periodic checkpoint before the final
	// (blocking) one, so the two writers never race on the same path.
	if pending != nil {
		if err := pending.finish(); err != nil {
			return err
		}
		pending = nil
	}
	elapsed := env.Wtime() - start

	if ckpt != "" {
		if err := writeCheckpoint(world, ckpt, grid, n, cols, width, it, lastRes); err != nil {
			return err
		}
	}

	// Report the global heat content from rank 0. Summed in global
	// column order — per-column sums gathered in rank order, folded
	// sequentially at the root — so the value is bit-identical for any
	// rank count: a -survive run that shrank mid-solve must reproduce
	// the undisturbed run's result line verbatim, and a SUM reduction
	// tree's fold order would depend on the partition.
	colSums := make([]float64, cols)
	for c := 1; c <= cols; c++ {
		s := 0.0
		for r := 0; r < n; r++ {
			s += grid[r*width+c]
		}
		colSums[c-1] = s
	}
	allSums := make([]float64, n)
	if err := world.Gather(colSums, 0, cols, mpi.DOUBLE, allSums, 0, cols, mpi.DOUBLE, 0); err != nil {
		return err
	}
	out := []float64{0}
	for _, s := range allSums {
		out[0] += s
	}
	// A closing barrier keeps the repaired communicator's teardown
	// aligned: in -survive mode the world barrier in Finalize is skipped
	// (the world is revoked), so this is what stops a fast rank from
	// closing the fabric under a peer still draining the gather.
	if err := world.Barrier(); err != nil {
		return err
	}
	if rank == 0 {
		fmt.Printf("jacobi: %d ranks, %dx%d grid, %d iterations, heat=%.4f, %.3fs\n",
			size, n, n, it, out[0], elapsed)
		// A timing-free line with full precision: a restored run must
		// reproduce an uninterrupted run's values bit-exactly (the CI
		// smoke job compares these lines verbatim).
		fmt.Printf("jacobi result: iters=%d heat=%.17g residual=%.17g\n", it, out[0], lastRes)
	}
	return nil
}
