// Jacobi: iterative 2-D heat diffusion on a column-partitioned grid —
// the paper's §2.2 motivating case for derived datatypes. The global
// N×N grid is linearized row-major into a one-dimensional array (Java
// and Go have no true multidimensional arrays, §2.2); each rank owns a
// band of columns plus one halo column per neighbour. Outgoing halo
// columns — strided sections of the local array — travel as
// MPI_TYPE_VECTOR datatypes; incoming halos land in preallocated
// contiguous buffers through the zero-copy IrecvInto path, so the whole
// exchange allocates nothing in steady state: the demo workload for the
// runtime's pooled, receive-into hot path. Convergence is a
// MAX-Iallreduce of the local residuals, overlapped with the next
// sweep: the reduction started after sweep k is only waited for after
// sweep k+1's compute, so the collective's latency hides behind the
// relaxation instead of serializing every iteration (the check lags one
// sweep, costing at most one extra iteration).
//
//	go run ./examples/jacobi [-n 96] [-np 4] [-iters 500]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"gompi/mpi"
)

func main() {
	n := flag.Int("n", 96, "global grid side")
	np := flag.Int("np", 4, "number of ranks")
	iters := flag.Int("iters", 500, "max iterations")
	tol := flag.Float64("tol", 1e-4, "convergence threshold")
	flag.Parse()
	if *n%*np != 0 {
		log.Fatalf("grid side %d must divide by np %d", *n, *np)
	}
	if err := mpi.Run(*np, func(env *mpi.Env) error {
		return jacobi(env, *n, *iters, *tol)
	}); err != nil {
		log.Fatal(err)
	}
}

func jacobi(env *mpi.Env, n, maxIters int, tol float64) error {
	world := env.CommWorld()
	rank, size := world.Rank(), world.Size()
	cols := n / size
	width := cols + 2 // owned columns plus two halo columns

	// Row-major local band: grid[r*width + c], c=0 and c=width-1 halos.
	grid := make([]float64, n*width)
	next := make([]float64, n*width)

	// Boundary condition: the global left edge (the first owned column
	// of rank 0, local index 1) is hot.
	if rank == 0 {
		for r := 0; r < n; r++ {
			grid[r*width+1] = 1.0
			next[r*width+1] = 1.0
		}
	}

	// An outgoing halo column is a strided section: n blocks of 1
	// double, stride width — exactly MPI_TYPE_VECTOR over the
	// linearized array.
	colType, err := mpi.TypeVector(n, 1, width, mpi.DOUBLE)
	if err != nil {
		return err
	}
	colType.Commit()

	left, right := rank-1, rank+1
	if left < 0 {
		left = mpi.ProcNull
	}
	if right >= size {
		right = mpi.ProcNull
	}

	// Preallocated contiguous halo landing zones: incoming columns are
	// deposited here directly off the wire (RecvInto), then scattered
	// into the strided halo column. The buffers live for the whole
	// solve — the halo exchange allocates nothing per iteration.
	haloL := make([]float64, n)
	haloR := make([]float64, n)

	// In-flight residual reduction: started after sweep k, waited for
	// after sweep k+1's compute, so communication overlaps computation.
	var resReq *mpi.CollRequest
	resIn := []float64{0}
	resOut := []float64{0}

	start := env.Wtime()
	it := 0
	for ; it < maxIters; it++ {
		// Exchange halos: post both zero-copy receives first, then send
		// the owned boundary columns, then scatter the landed halos.
		reqL, err := world.IrecvInto(haloL, 0, n, mpi.DOUBLE, left, 2)
		if err != nil {
			return err
		}
		reqR, err := world.IrecvInto(haloR, 0, n, mpi.DOUBLE, right, 1)
		if err != nil {
			return err
		}
		if err := world.Send(grid, 1, 1, colType, left, 1); err != nil {
			return err
		}
		if err := world.Send(grid, width-2, 1, colType, right, 2); err != nil {
			return err
		}
		stL, err := reqL.Wait()
		if err != nil {
			return err
		}
		stR, err := reqR.Wait()
		if err != nil {
			return err
		}
		if left != mpi.ProcNull && stL.GetCount(mpi.DOUBLE) == n {
			for r := 0; r < n; r++ {
				grid[r*width] = haloL[r]
			}
		}
		if right != mpi.ProcNull && stR.GetCount(mpi.DOUBLE) == n {
			for r := 0; r < n; r++ {
				grid[r*width+width-1] = haloR[r]
			}
		}

		// Relax the interior.
		local := 0.0
		for r := 1; r < n-1; r++ {
			for c := 1; c <= cols; c++ {
				// Skip the fixed global edges.
				gc := rank*cols + (c - 1)
				if gc == 0 || gc == n-1 {
					next[r*width+c] = grid[r*width+c]
					continue
				}
				v := 0.25 * (grid[(r-1)*width+c] + grid[(r+1)*width+c] +
					grid[r*width+c-1] + grid[r*width+c+1])
				if d := math.Abs(v - grid[r*width+c]); d > local {
					local = d
				}
				next[r*width+c] = v
			}
		}
		grid, next = next, grid

		// The previous sweep's residual reduction has been overlapping
		// this sweep's halo exchange and relaxation; settle it now. The
		// reduced maximum is identical on every rank, so all ranks take
		// the same branch and the collective call sequence stays aligned.
		if resReq != nil {
			if err := resReq.Wait(); err != nil {
				return err
			}
			if resOut[0] < tol {
				resReq = nil
				break
			}
		}

		// Launch this sweep's residual reduction; it completes in the
		// background while the next sweep computes (collectives travel
		// on their own context, so they cannot interfere with the halo
		// point-to-point traffic).
		resIn[0] = local
		if resReq, err = world.Iallreduce(resIn, 0, resOut, 0, 1, mpi.DOUBLE, mpi.MAX); err != nil {
			return err
		}
	}
	// Drain the final in-flight reduction so every rank has made the
	// same collective calls before the closing Reduce.
	if resReq != nil {
		if err := resReq.Wait(); err != nil {
			return err
		}
	}
	elapsed := env.Wtime() - start

	// Report the global heat content from rank 0.
	sum := 0.0
	for r := 0; r < n; r++ {
		for c := 1; c <= cols; c++ {
			sum += grid[r*width+c]
		}
	}
	in := []float64{sum}
	out := []float64{0}
	if err := world.Reduce(in, 0, out, 0, 1, mpi.DOUBLE, mpi.SUM, 0); err != nil {
		return err
	}
	if rank == 0 {
		fmt.Printf("jacobi: %d ranks, %dx%d grid, %d iterations, heat=%.4f, %.3fs\n",
			size, n, n, it, out[0], elapsed)
	}
	return nil
}
