// Package gompi's root benchmark file regenerates every table and figure
// of the paper's evaluation (§4) as testing.B benchmarks:
//
//	BenchmarkTable1_*   — Table 1: 1-byte message latency per environment
//	BenchmarkFig5_*     — Figure 5: PingPong bandwidth vs size, SM mode
//	BenchmarkFig6_*     — Figure 6: PingPong bandwidth vs size, DM mode
//	BenchmarkLinpack_*  — §4.6: native vs interpreted LINPACK Mflop/s
//	BenchmarkAblation_* — design-choice ablations (DESIGN.md §6)
//
// Benchmarks run the bare modern stack by default; set GOMPI_BENCH_PAPER=1
// to apply the 1999 testbed calibration (JNI cost model, WMPI/MPICH
// software profiles, 10BaseT shaping). cmd/pingpong prints the same
// artifacts as full tables; EXPERIMENTS.md records paper-vs-measured.
package gompi

import (
	"fmt"
	"os"
	"testing"

	"gompi/internal/bench"
	"gompi/internal/linpack"
	"gompi/mpi"
	"gompi/mpi/typed"
)

func paperProfile() bool { return os.Getenv("GOMPI_BENCH_PAPER") == "1" }

// benchPingPong runs one environment/size cell and reports one-way
// latency and bandwidth.
func benchPingPong(b *testing.B, s bench.Spec, size int) {
	b.Helper()
	s.Sizes = []int{size}
	s.Reps = b.N
	if s.Reps < 4 {
		s.Reps = 4
	}
	if s.Reps > 2000 {
		s.Reps = 2000
	}
	s.Warmup = 2
	s.Paper1999 = paperProfile()
	pts, err := bench.Run(s)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(pts[0].OneWay.Nanoseconds())/1e3, "us/oneway")
	b.ReportMetric(pts[0].MBps, "MB/s")
	b.SetBytes(int64(size))
}

// table1Cells enumerates the five environments of Table 1.
func table1Cells() []bench.Spec {
	return []bench.Spec{
		{Impl: bench.Wsock},
		{Impl: bench.NativeC, Platform: bench.WMPI},
		{Impl: bench.JavaOO, Platform: bench.WMPI},
		{Impl: bench.NativeC, Platform: bench.MPICH},
		{Impl: bench.JavaOO, Platform: bench.MPICH},
	}
}

// BenchmarkTable1_SM reproduces Table 1's Shared Memory row.
func BenchmarkTable1_SM(b *testing.B) {
	for _, cell := range table1Cells() {
		cell := cell
		cell.Mode = bench.SM
		b.Run(cell.Label(), func(b *testing.B) { benchPingPong(b, cell, 1) })
	}
}

// BenchmarkTable1_DM reproduces Table 1's Distributed Memory row.
func BenchmarkTable1_DM(b *testing.B) {
	for _, cell := range table1Cells() {
		cell := cell
		cell.Mode = bench.DM
		b.Run(cell.Label(), func(b *testing.B) { benchPingPong(b, cell, 1) })
	}
}

// figureCurves enumerates the four MPI curves of Figures 5 and 6.
func figureCurves(mode bench.Mode) []bench.Spec {
	return []bench.Spec{
		{Impl: bench.NativeC, Platform: bench.WMPI, Mode: mode},
		{Impl: bench.JavaOO, Platform: bench.WMPI, Mode: mode},
		{Impl: bench.NativeC, Platform: bench.MPICH, Mode: mode},
		{Impl: bench.JavaOO, Platform: bench.MPICH, Mode: mode},
	}
}

// figureSizes is the message-size axis sampled by the figure benchmarks
// (cmd/pingpong sweeps all 21 powers of two).
var figureSizes = []int{1, 1 << 10, 1 << 16, 1 << 20}

// BenchmarkFig5 reproduces Figure 5: PingPong in SM mode.
func BenchmarkFig5(b *testing.B) {
	for _, curve := range figureCurves(bench.SM) {
		for _, size := range figureSizes {
			curve, size := curve, size
			b.Run(fmt.Sprintf("%s/size=%d", curve.Label(), size), func(b *testing.B) {
				benchPingPong(b, curve, size)
			})
		}
	}
}

// BenchmarkFig6 reproduces Figure 6: PingPong in DM mode.
func BenchmarkFig6(b *testing.B) {
	for _, curve := range figureCurves(bench.DM) {
		for _, size := range figureSizes {
			curve, size := curve, size
			b.Run(fmt.Sprintf("%s/size=%d", curve.Label(), size), func(b *testing.B) {
				benchPingPong(b, curve, size)
			})
		}
	}
}

// BenchmarkFileIO measures the parallel I/O subsystem: 4-rank
// collective two-phase WriteAtAll/ReadAtAll bandwidth, reported as
// aggregate MB/s across ranks.
func BenchmarkFileIO(b *testing.B) {
	for _, size := range []int{64 << 10, 1 << 20} {
		size := size
		b.Run(fmt.Sprintf("perRank=%d", size), func(b *testing.B) {
			pts, err := bench.IOBandwidth(4, []int{size}, b.N, b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(pts[0].WriteMBps, "write-MB/s")
			b.ReportMetric(pts[0].ReadMBps, "read-MB/s")
		})
	}
}

// BenchmarkLinpack_Native reproduces the native side of §4.6.
func BenchmarkLinpack_Native(b *testing.B) {
	const n = 200
	var last linpack.Result
	for i := 0; i < b.N; i++ {
		r, err := linpack.RunNative(n)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.Mflops, "Mflop/s")
}

// BenchmarkLinpack_Interpreted reproduces the JVM side of §4.6.
func BenchmarkLinpack_Interpreted(b *testing.B) {
	const n = 200
	var last linpack.Result
	for i := 0; i < b.N; i++ {
		r, err := linpack.RunInterpreted(n)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.Mflops, "Mflop/s")
}

// BenchmarkAblation_EagerLimit sweeps the eager/rendezvous threshold at a
// fixed 256 KB message — where the protocol switch lands on the curve
// (DESIGN.md §6).
func BenchmarkAblation_EagerLimit(b *testing.B) {
	for _, limit := range []int{-1, 1 << 10, 1 << 16, 1 << 20} {
		limit := limit
		b.Run(fmt.Sprintf("limit=%d", limit), func(b *testing.B) {
			s := bench.Spec{Impl: bench.NativeC, Platform: bench.WMPI, Mode: bench.SM, EagerLimit: limit}
			benchPingPong(b, s, 256<<10)
		})
	}
}

// BenchmarkAblation_BindingOverhead measures the OO binding with and
// without the emulated JNI crossing — the paper's central comparison,
// isolated from the transport.
func BenchmarkAblation_BindingOverhead(b *testing.B) {
	for _, paper := range []bool{false, true} {
		paper := paper
		name := "modern"
		if paper {
			name = "jni1999"
		}
		b.Run(name, func(b *testing.B) {
			s := bench.Spec{Impl: bench.JavaOO, Platform: bench.WMPI, Mode: bench.SM, Paper1999: paper}
			s.Sizes = []int{1}
			s.Reps = b.N
			if s.Reps < 4 {
				s.Reps = 4
			}
			if s.Reps > 2000 {
				s.Reps = 2000
			}
			s.Warmup = 2
			pts, err := bench.Run(s)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(pts[0].OneWay.Nanoseconds())/1e3, "us/oneway")
		})
	}
}

// BenchmarkAblation_Allreduce compares the recursive-doubling allreduce
// against the gather-fold-broadcast path the runtime uses for
// non-commutative operations (DESIGN.md §6).
func BenchmarkAblation_Allreduce(b *testing.B) {
	sumNC := mpi.NewOp(func(in, inout any) {
		a := in.([]float64)
		o := inout.([]float64)
		for i := range o {
			o[i] += a[i]
		}
	}, false) // declared non-commutative: forces rank-ordered reduce+bcast
	for _, algo := range []struct {
		name string
		op   *mpi.Op
	}{
		{"recursive-doubling", mpi.SUM},
		{"reduce-bcast", sumNC},
	} {
		algo := algo
		b.Run(algo.name, func(b *testing.B) {
			const np, width = 4, 1024
			err := mpi.Run(np, func(env *mpi.Env) error {
				w := env.CommWorld()
				in := make([]float64, width)
				out := make([]float64, width)
				for i := range in {
					in[i] = float64(w.Rank() + i)
				}
				for i := 0; i < b.N; i++ {
					if err := w.Allreduce(in, 0, out, 0, width, mpi.DOUBLE, algo.op); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkAblation_Transport compares the shm and TCP-loopback devices
// carrying the same binding traffic — the SM/DM hardware split isolated
// from the 1999 calibration.
func BenchmarkAblation_Transport(b *testing.B) {
	for _, tcp := range []bool{false, true} {
		tcp := tcp
		name := "shm"
		if tcp {
			name = "tcp"
		}
		b.Run(name, func(b *testing.B) {
			mode := bench.SM
			if tcp {
				mode = bench.DM
			}
			s := bench.Spec{Impl: bench.JavaOO, Platform: bench.WMPI, Mode: mode}
			benchPingPong(b, s, 4096)
		})
	}
}

// BenchmarkTypedVsClassic runs the same ping-pong exchange through the
// classic mpiJava-style API and the typed generics API. The typed layer
// resolves datatypes through the inference cache on every call; the two
// curves must coincide (the acceptance bar is 5%), showing inference
// adds no measurable per-message cost over the classic path.
func BenchmarkTypedVsClassic(b *testing.B) {
	for _, elems := range []int{1, 1 << 10, 1 << 16} {
		elems := elems
		b.Run(fmt.Sprintf("classic/elems=%d", elems), func(b *testing.B) {
			err := mpi.Run(2, func(env *mpi.Env) error {
				w := env.CommWorld()
				buf := make([]float64, elems)
				peer := 1 - w.Rank()
				for i := 0; i < b.N; i++ {
					if w.Rank() == 0 {
						if err := w.Send(buf, 0, elems, mpi.DOUBLE, peer, 3); err != nil {
							return err
						}
						if _, err := w.Recv(buf, 0, elems, mpi.DOUBLE, peer, 3); err != nil {
							return err
						}
					} else {
						if _, err := w.Recv(buf, 0, elems, mpi.DOUBLE, peer, 3); err != nil {
							return err
						}
						if err := w.Send(buf, 0, elems, mpi.DOUBLE, peer, 3); err != nil {
							return err
						}
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(elems * 8 * 2))
		})
		b.Run(fmt.Sprintf("typed/elems=%d", elems), func(b *testing.B) {
			err := mpi.Run(2, func(env *mpi.Env) error {
				w := env.CommWorld()
				buf := make([]float64, elems)
				peer := 1 - w.Rank()
				for i := 0; i < b.N; i++ {
					if w.Rank() == 0 {
						if err := typed.Send(w, buf, peer, 3); err != nil {
							return err
						}
						if _, err := typed.Recv(w, buf, peer, 3); err != nil {
							return err
						}
					} else {
						if _, err := typed.Recv(w, buf, peer, 3); err != nil {
							return err
						}
						if err := typed.Send(w, buf, peer, 3); err != nil {
							return err
						}
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(elems * 8 * 2))
		})
		// recvinto: the preallocated-buffer hot path — the payload lands
		// directly in buf with no staging allocation or unpack copy.
		b.Run(fmt.Sprintf("recvinto/elems=%d", elems), func(b *testing.B) {
			err := mpi.Run(2, func(env *mpi.Env) error {
				w := env.CommWorld()
				buf := make([]float64, elems)
				peer := 1 - w.Rank()
				for i := 0; i < b.N; i++ {
					if w.Rank() == 0 {
						if err := typed.Send(w, buf, peer, 3); err != nil {
							return err
						}
						if _, err := typed.RecvInto(w, buf, peer, 3); err != nil {
							return err
						}
					} else {
						if _, err := typed.RecvInto(w, buf, peer, 3); err != nil {
							return err
						}
						if err := typed.Send(w, buf, peer, 3); err != nil {
							return err
						}
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(elems * 8 * 2))
		})
	}
}

// BenchmarkDerivedTypePack measures the datatype engine's strided pack
// path against the contiguous fast path.
func BenchmarkDerivedTypePack(b *testing.B) {
	err := mpi.Run(2, func(env *mpi.Env) error {
		w := env.CommWorld()
		const n = 256
		col, err := mpi.TypeVector(n, 1, n, mpi.DOUBLE)
		if err != nil {
			return err
		}
		col.Commit()
		mat := make([]float64, n*n)
		if w.Rank() == 0 {
			for i := 0; i < b.N; i++ {
				if err := w.Send(mat, 0, 1, col, 1, 1); err != nil {
					return err
				}
			}
			return nil
		}
		colIn := make([]float64, n)
		for i := 0; i < b.N; i++ {
			if _, err := w.Recv(colIn, 0, n, mpi.DOUBLE, 0, 1); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}
